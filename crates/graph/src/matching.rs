//! Maximal matchings.
//!
//! Taking both endpoints of a maximal matching is the classic
//! 2-approximation for minimum vertex cover (Gavril, see \[GJ79\] in the
//! paper); the matching size is also a lower bound on the optimum VC, which
//! the benchmark harness uses to bound approximation ratios on graphs too
//! large for the exact solver.

use crate::{Graph, NodeId};

/// A matching: a set of vertex-disjoint edges.
#[derive(Clone, Debug, Default)]
pub struct Matching {
    /// The matched edges `(u, v)` with `u < v`.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl Matching {
    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Membership vector of all matched endpoints (a vertex cover if the
    /// matching is maximal).
    pub fn endpoints(&self, n: usize) -> Vec<bool> {
        let mut out = vec![false; n];
        for &(u, v) in &self.edges {
            out[u.index()] = true;
            out[v.index()] = true;
        }
        out
    }

    /// Checks that the edges are pairwise vertex-disjoint and exist in `g`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        let mut used = vec![false; g.num_nodes()];
        for &(u, v) in &self.edges {
            if !g.has_edge(u, v) || used[u.index()] || used[v.index()] {
                return false;
            }
            used[u.index()] = true;
            used[v.index()] = true;
        }
        true
    }

    /// Checks maximality: no `g`-edge has both endpoints unmatched.
    pub fn is_maximal(&self, g: &Graph) -> bool {
        let used = self.endpoints(g.num_nodes());
        g.edges().all(|(u, v)| used[u.index()] || used[v.index()])
    }
}

/// Greedily computes a maximal matching, scanning edges in sorted order.
///
/// Deterministic: the result depends only on the graph.
pub fn maximal_matching(g: &Graph) -> Matching {
    let mut used = vec![false; g.num_nodes()];
    let mut edges = Vec::new();
    for (u, v) in g.edges() {
        if !used[u.index()] && !used[v.index()] {
            used[u.index()] = true;
            used[v.index()] = true;
            edges.push((u, v));
        }
    }
    Matching { edges }
}

/// The 2-approximate vertex cover induced by a greedy maximal matching:
/// both endpoints of every matched edge.
pub fn two_approx_vertex_cover(g: &Graph) -> Vec<bool> {
    maximal_matching(g).endpoints(g.num_nodes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::{is_vertex_cover, set_size};
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matching_on_path() {
        let g = generators::path(6);
        let m = maximal_matching(&g);
        assert!(m.is_valid(&g));
        assert!(m.is_maximal(&g));
        assert_eq!(m.len(), 3); // greedy on a path takes alternate edges
    }

    #[test]
    fn matching_on_empty() {
        let g = Graph::empty(4);
        let m = maximal_matching(&g);
        assert!(m.is_empty());
        assert!(m.is_valid(&g));
        assert!(m.is_maximal(&g));
    }

    #[test]
    fn endpoints_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let g = generators::gnp(30, 0.1, &mut rng);
            let vc = two_approx_vertex_cover(&g);
            assert!(is_vertex_cover(&g, &vc));
        }
    }

    #[test]
    fn matching_is_lower_bound() {
        // On K4, max matching = 2, opt VC = 3; greedy matching ≤ opt.
        let g = generators::complete(4);
        let m = maximal_matching(&g);
        assert!(m.len() <= 3);
        let vc = two_approx_vertex_cover(&g);
        assert!(set_size(&vc) <= 2 * m.len());
    }

    #[test]
    fn invalid_matching_detected() {
        let g = generators::path(4);
        let bad = Matching {
            edges: vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))],
        };
        assert!(!bad.is_valid(&g));
        let nonedge = Matching {
            edges: vec![(NodeId(0), NodeId(2))],
        };
        assert!(!nonedge.is_valid(&g));
    }
}
