//! Graph powers: `G²`, `G^r`, and distance-bounded neighborhoods.
//!
//! The paper studies problems whose *feasibility* is defined on the square
//! `G² = (V, F)` where `F = {{u,v} : 0 < dist_G(u,v) ≤ 2}`, while
//! *communication* happens on `G`. This module computes powers centrally so
//! that solutions produced by distributed algorithms can be validated.

use crate::{Graph, GraphBuilder, NodeId};
use std::collections::VecDeque;

/// Computes the square `G²` of `g`.
///
/// `{u, v}` is an edge of `G²` iff `u ≠ v` and `dist_G(u, v) ≤ 2`.
///
/// Dispatches on size: at and above
/// [`SQUARE_BMM_MIN_NODES`](crate::bmm::SQUARE_BMM_MIN_NODES) vertices
/// the bitset-blocked BMM kernel ([`crate::bmm::square_bmm`]) runs;
/// below it the scalar mark-array loop ([`square_scalar`]) does. The two
/// paths produce the same graph bit for bit (a proptest invariant), so
/// the threshold is purely a wall-clock knob.
///
/// # Example
///
/// ```
/// use pga_graph::{Graph, NodeId};
/// use pga_graph::power::square;
///
/// let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
/// let s2 = square(&star);
/// // Leaves of a star are pairwise at distance 2: G² is a clique.
/// assert_eq!(s2.num_edges(), 6);
/// ```
pub fn square(g: &Graph) -> Graph {
    if g.num_nodes() >= crate::bmm::SQUARE_BMM_MIN_NODES {
        crate::bmm::square_bmm(g)
    } else {
        square_scalar(g)
    }
}

/// The scalar mark-array reference implementation of [`square`].
///
/// Runs in `O(Σ_v deg(v)²)` time, which is the size of the output in the
/// worst case. Kept public as the oracle the BMM kernel is proven
/// against and as the baseline the benchmark harness times.
pub fn square_scalar(g: &Graph) -> Graph {
    let n = g.num_nodes();
    let mut b = GraphBuilder::new(n);
    // mark[] based two-hop expansion: for each u, every neighbor and
    // neighbor-of-neighbor with larger id gets an edge.
    let mut mark = vec![false; n];
    for u in g.nodes() {
        let mut touched = Vec::new();
        for &v in g.neighbors(u) {
            if v > u && !mark[v.index()] {
                mark[v.index()] = true;
                touched.push(v);
                b.add_edge(u, v);
            }
            for &w in g.neighbors(v) {
                if w > u && !mark[w.index()] {
                    mark[w.index()] = true;
                    touched.push(w);
                    b.add_edge(u, w);
                }
            }
        }
        for t in touched {
            mark[t.index()] = false;
        }
    }
    b.build()
}

/// Computes the `r`-th power `G^r` of `g`.
///
/// `{u, v}` is an edge of `G^r` iff `u ≠ v` and `dist_G(u, v) ≤ r`.
/// `power(g, 1)` is `g` itself; `power(g, 0)` is edgeless.
///
/// Implemented as a depth-bounded BFS from every vertex.
pub fn power(g: &Graph, r: usize) -> Graph {
    if r == 2 {
        return square(g);
    }
    let n = g.num_nodes();
    let mut b = GraphBuilder::new(n);
    if r == 0 {
        return b.build();
    }
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for u in g.nodes() {
        // BFS from u up to depth r.
        let mut touched = vec![u];
        dist[u.index()] = 0;
        queue.push_back(u);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v.index()];
            if dv == r {
                continue;
            }
            for &w in g.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dv + 1;
                    touched.push(w);
                    queue.push_back(w);
                    if w > u {
                        b.add_edge(u, w);
                    }
                }
            }
        }
        for t in touched {
            dist[t.index()] = usize::MAX;
        }
    }
    b.build()
}

/// Returns the sorted set of vertices at `G`-distance exactly 1 or 2
/// from `v` (the `G²`-neighborhood of `v`, excluding `v`).
///
/// Runs on the bitset row kernel: one register union over `N(v)` and its
/// neighbors' rows, emitted already sorted and deduplicated — no
/// `O(deg²)` intermediate list, no sort/dedup pass. Bulk callers that
/// query many vertices of the same graph should hold a
/// [`crate::bmm::TwoHopScratch`] instead, which amortizes the register
/// allocation and the heavy-row packing across queries.
pub fn two_hop_neighborhood(g: &Graph, v: NodeId) -> Vec<NodeId> {
    let mut scratch = crate::bmm::TwoHopScratch::new(g);
    let mut out = Vec::new();
    scratch.row_into(g, v, &mut out);
    out
}

/// Number of vertices within `G`-distance 2 of `v`, excluding `v`
/// (the degree of `v` in `G²`).
///
/// A popcount over the bitset row — the neighborhood is never
/// materialized as an id list.
pub fn two_hop_degree(g: &Graph, v: NodeId) -> usize {
    let mut scratch = crate::bmm::TwoHopScratch::new(g);
    scratch.degree(g, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::bfs_distances;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Oracle: G^r via all-pairs BFS distances.
    fn power_oracle(g: &Graph, r: usize) -> Graph {
        let n = g.num_nodes();
        let mut b = GraphBuilder::new(n);
        for u in g.nodes() {
            let dist = bfs_distances(g, u);
            for v in g.nodes() {
                if v > u {
                    if let Some(d) = dist[v.index()] {
                        if d >= 1 && d <= r {
                            b.add_edge(u, v);
                        }
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn square_of_path() {
        let g = generators::path(6);
        let g2 = square(&g);
        // Path edges: 5, plus distance-2 pairs: 4.
        assert_eq!(g2.num_edges(), 9);
        assert!(g2.has_edge(NodeId(0), NodeId(2)));
        assert!(!g2.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn square_of_cycle() {
        let g = generators::cycle(6);
        let g2 = square(&g);
        assert_eq!(g2.num_edges(), 12);
        assert!(g2.has_edge(NodeId(0), NodeId(2)));
        assert!(g2.has_edge(NodeId(0), NodeId(4)));
        assert!(!g2.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn square_of_small_cycles_complete() {
        // C4 and C5 squared are complete.
        for n in [4usize, 5] {
            let g2 = square(&generators::cycle(n));
            assert_eq!(g2.num_edges(), n * (n - 1) / 2, "C{n}² must be complete");
        }
    }

    #[test]
    fn square_neighborhood_is_clique() {
        // Paper §1: every G-neighborhood induces a clique in G².
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::gnp(30, 0.12, &mut rng);
        let g2 = square(&g);
        for v in g.nodes() {
            let nb: Vec<NodeId> = g.neighbors(v).to_vec();
            assert!(g2.is_clique(&nb), "N({v:?}) not a clique in G²");
        }
    }

    #[test]
    fn power_zero_and_one() {
        let g = generators::cycle(7);
        assert_eq!(power(&g, 0).num_edges(), 0);
        assert_eq!(power(&g, 1), g);
    }

    #[test]
    fn power_matches_oracle_random() {
        let mut rng = StdRng::seed_from_u64(42);
        for &n in &[1usize, 2, 8, 20] {
            for &p in &[0.0, 0.1, 0.3] {
                let g = generators::gnp(n, p, &mut rng);
                for r in 0..5 {
                    assert_eq!(power(&g, r), power_oracle(&g, r), "n={n} p={p} r={r}");
                }
            }
        }
    }

    #[test]
    fn square_matches_power_two() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp(25, 0.15, &mut rng);
        assert_eq!(square(&g), power_oracle(&g, 2));
    }

    #[test]
    fn high_power_of_connected_graph_is_complete() {
        let g = generators::path(9);
        let gp = power(&g, 8);
        assert_eq!(gp.num_edges(), 9 * 8 / 2);
    }

    #[test]
    fn two_hop_neighborhood_matches_square() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnp(20, 0.2, &mut rng);
        let g2 = square(&g);
        for v in g.nodes() {
            assert_eq!(two_hop_neighborhood(&g, v), g2.neighbors(v).to_vec());
            assert_eq!(two_hop_degree(&g, v), g2.degree(v));
        }
    }

    #[test]
    fn square_dispatch_above_threshold_matches_scalar() {
        // path(5000) crosses SQUARE_BMM_MIN_NODES, so `square` routes to
        // the BMM kernel; the scalar loop must agree bit for bit.
        let g = generators::path(crate::bmm::SQUARE_BMM_MIN_NODES + 904);
        assert_eq!(square(&g), square_scalar(&g));
    }

    #[test]
    fn disconnected_components_stay_disconnected() {
        // Two disjoint edges: square adds nothing across components.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let g2 = square(&g);
        assert_eq!(g2.num_edges(), 2);
    }
}
