//! Cost-balanced contiguous partitioning.
//!
//! [`balanced_partition`] draws shard boundaries on the prefix sums of a
//! per-item cost vector. It started life in the round-execution kernel
//! (`pga-runtime`, which still re-exports it) as the load balancer of the
//! sharded engines, and lives here so the graph substrate's own
//! multi-threaded kernels ([`crate::bmm::square_bmm_sharded`]) can draw
//! the same boundaries over per-row costs without a dependency cycle.

/// Splits `costs.len()` items into at most `shards` contiguous,
/// non-empty ranges whose total costs are as even as a prefix walk
/// allows, and returns the boundary offsets
/// `0 = b_0 < b_1 < … < b_k = n` (so shard `j` covers `b_j..b_{j+1}`).
///
/// Boundary `j` is the smallest index whose cost prefix reaches the
/// ideal share `j / k` of the total, clamped so every shard keeps at
/// least one item. With uniform costs this reproduces even
/// `n / shards` ranges; with skewed costs (heavy-tail degree
/// distributions) the hub-carrying prefix is cut short so no shard
/// inherits a disproportionate share of the work.
///
/// The function is deterministic and pure, and every consumer in the
/// workspace (the sharded round engines, the blocked-BMM kernel)
/// preserves bit-identity for *any* contiguous partition — boundaries
/// only affect wall-clock balance. Public so benches and tests can
/// inspect the boundaries the engines will use.
pub fn balanced_partition(costs: &[u64], shards: usize) -> Vec<usize> {
    let n = costs.len();
    if n == 0 {
        return vec![0];
    }
    let k = shards.clamp(1, n);
    let mut prefix: Vec<u128> = Vec::with_capacity(n + 1);
    let mut acc: u128 = 0;
    prefix.push(0);
    for &c in costs {
        acc += u128::from(c);
        prefix.push(acc);
    }
    let total = acc;
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0usize);
    for j in 1..k {
        // Smallest b with prefix[b] ≥ total · j / k (rounded up), kept
        // strictly increasing and leaving ≥ 1 item per remaining shard.
        let target = (total * j as u128).div_ceil(k as u128);
        let b = prefix
            .partition_point(|&p| p < target)
            .clamp(j, n - (k - j))
            .max(bounds[j - 1] + 1);
        bounds.push(b);
    }
    bounds.push(n);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_partition_uniform_costs_even_ranges() {
        let bounds = balanced_partition(&[1; 12], 4);
        assert_eq!(bounds, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn balanced_partition_skewed_costs_isolate_the_head() {
        // One huge item followed by small ones: the first shard must stop
        // right after the hub instead of swallowing a quarter of the items.
        let mut costs = vec![1u64; 16];
        costs[0] = 1000;
        let bounds = balanced_partition(&costs, 4);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[1], 1, "hub isolated into its own shard");
        assert_eq!(*bounds.last().unwrap(), 16);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn balanced_partition_edge_cases() {
        assert_eq!(balanced_partition(&[], 4), vec![0]);
        assert_eq!(balanced_partition(&[5], 4), vec![0, 1]);
        assert_eq!(balanced_partition(&[1, 1], 1), vec![0, 2]);
        // All-zero costs still produce non-empty shards.
        let bounds = balanced_partition(&[0; 10], 3);
        assert_eq!(bounds.len(), 4);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        // More shards than items degrades to one item per shard.
        let bounds = balanced_partition(&[7; 3], 9);
        assert_eq!(bounds, vec![0, 1, 2, 3]);
    }

    #[test]
    fn balanced_partition_monotone_prefix_targets() {
        let costs: Vec<u64> = (0..50).map(|i| (i % 7) + 1).collect();
        for shards in 1..10 {
            let bounds = balanced_partition(&costs, shards);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), 50);
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "shards: {shards}");
        }
    }
}
