//! Graph substrate for the power-graphs project.
//!
//! This crate provides the undirected-graph foundation that every other
//! crate in the workspace builds on:
//!
//! * [`Graph`] — a compact, immutable adjacency-list representation with a
//!   mutable [`GraphBuilder`] companion,
//! * [`power`] — computation of graph powers `G^r` (in particular the square
//!   `G²` that the PODC 2020 paper *Distributed Approximation on Power
//!   Graphs* studies),
//! * [`bmm`] — bitset-blocked Boolean matrix multiplication: the fast `G²`
//!   materialization kernel (packed `u64` row bitmaps, degree-capped sparse
//!   path, sharded variant) that [`power::square`] routes to above a size
//!   threshold,
//! * [`partition`] — cost-balanced contiguous partitioning
//!   ([`balanced_partition`]), shared by the BMM kernel and the round engines
//!   in `pga-runtime`,
//! * [`generators`] — deterministic and seeded-random graph families used by
//!   the test suite and the benchmark harness,
//! * [`traversal`] — BFS, connected components and distance computations,
//! * [`matching`] — maximal matchings (the classic 2-approximation substrate
//!   for vertex cover),
//! * [`cover`] — validity checks for vertex covers, dominating sets and
//!   independent sets on `G` and on `G^r`,
//! * [`subgraph`] — induced subgraphs with node-index mappings,
//! * [`weights`] — vertex weight vectors for the weighted problem variants.
//!
//! # Example
//!
//! ```
//! use pga_graph::{Graph, NodeId};
//! use pga_graph::power::square;
//!
//! // A path on 5 vertices: 0 - 1 - 2 - 3 - 4
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
//! let g2 = square(&g);
//!
//! // In G², vertices at distance two become adjacent.
//! assert!(g2.has_edge(NodeId(0), NodeId(2)));
//! assert!(!g2.has_edge(NodeId(0), NodeId(3)));
//! assert_eq!(g2.num_edges(), 4 + 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bmm;
#[cfg(feature = "compact")]
pub mod compact;
pub mod cover;
pub mod generators;
mod graph;
pub mod io;
pub mod matching;
pub mod partition;
pub mod power;
pub mod properties;
pub mod subgraph;
pub mod traversal;
pub mod weights;

pub use graph::{Graph, GraphBuilder, NodeId};
pub use partition::balanced_partition;
pub use weights::VertexWeights;
