//! Structural graph properties used in the paper's analyses: triangle
//! counts (the 5/3 algorithm's part 1 feeds on them), degeneracy, and the
//! density blow-up from `G` to `G²` that quantifies the congestion
//! obstacle.

use crate::power::square;
use crate::{Graph, NodeId};

/// Counts the triangles of `g`.
///
/// `O(Σ deg²)` via neighbor-list intersections; each triangle counted
/// once.
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0;
    for (u, v) in g.edges() {
        // Common neighbors w with w > v > u count each triangle once.
        count += g
            .common_neighbors(u, v)
            .into_iter()
            .filter(|&w| w > v)
            .count();
    }
    count
}

/// The degeneracy of `g`: the smallest `d` such that every subgraph has a
/// vertex of degree ≤ `d` (computed by repeatedly removing minimum-degree
/// vertices).
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(NodeId::from_index(v))).collect();
    let mut removed = vec![false; n];
    let mut degen = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| deg[v])
            .expect("vertices remain");
        degen = degen.max(deg[v]);
        removed[v] = true;
        for &u in g.neighbors(NodeId::from_index(v)) {
            if !removed[u.index()] {
                deg[u.index()] -= 1;
            }
        }
    }
    degen
}

/// The average clustering coefficient of `g` (0 for degree < 2 vertices).
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for v in g.nodes() {
        let d = g.degree(v);
        if d < 2 {
            continue;
        }
        let nb = g.neighbors(v);
        let mut links = 0;
        for (i, &a) in nb.iter().enumerate() {
            for &b in &nb[i + 1..] {
                if g.has_edge(a, b) {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (d * (d - 1)) as f64;
    }
    total / n as f64
}

/// Density statistics of the `G → G²` transition: how much bigger the
/// problem the paper solves is than the network it runs on.
#[derive(Clone, Debug, PartialEq)]
pub struct SquareBlowup {
    /// Edges of `G`.
    pub edges_g: usize,
    /// Edges of `G²`.
    pub edges_g2: usize,
    /// Maximum degree of `G`.
    pub max_degree_g: usize,
    /// Maximum degree of `G²` (bounded by `Δ²`).
    pub max_degree_g2: usize,
}

impl SquareBlowup {
    /// The edge blow-up factor `|E(G²)| / |E(G)|`.
    pub fn edge_factor(&self) -> f64 {
        if self.edges_g == 0 {
            return 1.0;
        }
        self.edges_g2 as f64 / self.edges_g as f64
    }
}

/// Measures the `G → G²` blow-up.
pub fn square_blowup(g: &Graph) -> SquareBlowup {
    let g2 = square(g);
    SquareBlowup {
        edges_g: g.num_edges(),
        edges_g2: g2.num_edges(),
        max_degree_g: g.max_degree(),
        max_degree_g2: g2.max_degree(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangles_in_families() {
        assert_eq!(triangle_count(&generators::complete(4)), 4);
        assert_eq!(triangle_count(&generators::complete(5)), 10);
        assert_eq!(triangle_count(&generators::cycle(5)), 0);
        assert_eq!(triangle_count(&generators::cycle(3)), 1);
        assert_eq!(triangle_count(&generators::star(10)), 0);
    }

    #[test]
    fn squares_are_triangle_rich() {
        // Every path of length 2 in G becomes a triangle in G².
        let g = generators::path(5);
        let g2 = square(&g);
        assert_eq!(triangle_count(&g), 0);
        assert!(triangle_count(&g2) >= 3);
    }

    #[test]
    fn degeneracy_values() {
        assert_eq!(degeneracy(&generators::complete(6)), 5);
        assert_eq!(degeneracy(&generators::star(10)), 1);
        assert_eq!(degeneracy(&generators::cycle(8)), 2);
        assert_eq!(degeneracy(&Graph::empty(3)), 0);
        // Trees are 1-degenerate.
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(5)
        };
        assert_eq!(degeneracy(&generators::random_tree(20, &mut rng)), 1);
    }

    #[test]
    fn clustering_extremes() {
        assert!((clustering_coefficient(&generators::complete(5)) - 1.0).abs() < 1e-12);
        assert_eq!(clustering_coefficient(&generators::star(8)), 0.0);
        assert_eq!(clustering_coefficient(&Graph::empty(0)), 0.0);
    }

    #[test]
    fn blowup_on_star_is_quadratic() {
        let g = generators::star(11); // Δ = 10
        let b = square_blowup(&g);
        assert_eq!(b.edges_g, 10);
        assert_eq!(b.edges_g2, 55); // K11
        assert!(b.edge_factor() > 5.0);
        assert_eq!(b.max_degree_g2, 10);
    }

    #[test]
    fn blowup_bounded_by_delta_squared() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let g = generators::gnp(30, 0.1, &mut rng);
        let b = square_blowup(&g);
        assert!(b.max_degree_g2 <= b.max_degree_g * b.max_degree_g + b.max_degree_g);
    }
}
