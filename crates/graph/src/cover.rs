//! Feasibility checks for vertex covers, dominating sets, and independent
//! sets — on `G` itself and on powers `G^r`.
//!
//! All checks take the graph on which feasibility is *defined*. To check a
//! `G²`-cover, pass the precomputed square (see [`crate::power::square`]),
//! or use the `*_on_square` helpers that work directly from `G` without
//! materializing `G²`.

use crate::power::two_hop_neighborhood;
use crate::{Graph, NodeId};

/// Converts a vertex subset given as a boolean membership vector into a
/// sorted list of node ids.
pub fn members(set: &[bool]) -> Vec<NodeId> {
    set.iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

/// Converts a list of node ids into a boolean membership vector of length
/// `n`.
pub fn membership(n: usize, set: &[NodeId]) -> Vec<bool> {
    let mut out = vec![false; n];
    for &v in set {
        out[v.index()] = true;
    }
    out
}

/// Whether `set` (membership vector) is a vertex cover of `g`: every edge
/// has at least one endpoint in the set.
pub fn is_vertex_cover(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(
        set.len(),
        g.num_nodes(),
        "membership vector length mismatch"
    );
    g.edges().all(|(u, v)| set[u.index()] || set[v.index()])
}

/// Whether `set` is a dominating set of `g`: every vertex is in the set or
/// has a neighbor in it.
pub fn is_dominating_set(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(
        set.len(),
        g.num_nodes(),
        "membership vector length mismatch"
    );
    g.nodes()
        .all(|v| set[v.index()] || g.neighbors(v).iter().any(|&u| set[u.index()]))
}

/// Whether `set` is an independent set of `g`: no edge has both endpoints
/// in the set.
pub fn is_independent_set(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(
        set.len(),
        g.num_nodes(),
        "membership vector length mismatch"
    );
    g.edges().all(|(u, v)| !(set[u.index()] && set[v.index()]))
}

/// Whether `set` is a vertex cover of `G²`, checked directly on `g`
/// without materializing the square.
///
/// An edge of `G²` is uncovered iff some vertex pair at distance ≤ 2 has
/// both endpoints outside the set, which happens iff either (a) a `G`-edge
/// is uncovered, or (b) some vertex has two uncovered `G`-neighbors.
pub fn is_vertex_cover_on_square(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(
        set.len(),
        g.num_nodes(),
        "membership vector length mismatch"
    );
    // (a) G-edges.
    if !is_vertex_cover(g, set) {
        return false;
    }
    // (b) two-paths u - w - v with u, v both uncovered.
    for w in g.nodes() {
        let uncovered = g.neighbors(w).iter().filter(|&&u| !set[u.index()]).count();
        if uncovered >= 2 {
            return false;
        }
    }
    true
}

/// Whether `set` is a dominating set of `G²`, checked directly on `g`.
pub fn is_dominating_set_on_square(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(
        set.len(),
        g.num_nodes(),
        "membership vector length mismatch"
    );
    g.nodes()
        .all(|v| set[v.index()] || two_hop_neighborhood(g, v).iter().any(|&u| set[u.index()]))
}

/// Total weight of a vertex subset.
pub fn set_weight(set: &[bool], weights: &[u64]) -> u64 {
    assert_eq!(set.len(), weights.len());
    set.iter()
        .zip(weights)
        .filter(|&(&m, _)| m)
        .map(|(_, &w)| w)
        .sum()
}

/// Size (cardinality) of a vertex subset.
pub fn set_size(set: &[bool]) -> usize {
    set.iter().filter(|&&m| m).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::power::square;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn vertex_cover_on_path() {
        let g = generators::path(5);
        assert!(is_vertex_cover(&g, &membership(5, &[NodeId(1), NodeId(3)])));
        assert!(!is_vertex_cover(&g, &membership(5, &[NodeId(1)])));
        assert!(is_vertex_cover(&g, &[true; 5]));
    }

    #[test]
    fn dominating_set_on_star() {
        let g = generators::star(6);
        assert!(is_dominating_set(&g, &membership(6, &[NodeId(0)])));
        assert!(!is_dominating_set(&g, &membership(6, &[NodeId(1)])));
    }

    #[test]
    fn independent_set_checks() {
        let g = generators::cycle(4);
        assert!(is_independent_set(
            &g,
            &membership(4, &[NodeId(0), NodeId(2)])
        ));
        assert!(!is_independent_set(
            &g,
            &membership(4, &[NodeId(0), NodeId(1)])
        ));
        assert!(is_independent_set(&g, &membership(4, &[])));
    }

    #[test]
    fn empty_set_covers_empty_graph() {
        let g = Graph::empty(4);
        assert!(is_vertex_cover(&g, &[false; 4]));
        // but it does not dominate (isolated vertices must be in the set)
        assert!(!is_dominating_set(&g, &[false; 4]));
        assert!(is_dominating_set(&g, &[true; 4]));
    }

    #[test]
    fn square_cover_check_matches_explicit_square() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..30 {
            let g = generators::gnp(18, 0.15, &mut rng);
            let g2 = square(&g);
            let set: Vec<bool> = (0..18).map(|_| rng.random::<f64>() < 0.6).collect();
            assert_eq!(
                is_vertex_cover_on_square(&g, &set),
                is_vertex_cover(&g2, &set)
            );
            assert_eq!(
                is_dominating_set_on_square(&g, &set),
                is_dominating_set(&g2, &set)
            );
        }
    }

    #[test]
    fn membership_roundtrip() {
        let ids = vec![NodeId(1), NodeId(4)];
        let mv = membership(6, &ids);
        assert_eq!(members(&mv), ids);
        assert_eq!(set_size(&mv), 2);
    }

    #[test]
    fn set_weight_sums() {
        let mv = membership(4, &[NodeId(0), NodeId(3)]);
        assert_eq!(set_weight(&mv, &[5, 7, 9, 11]), 16);
    }

    #[test]
    fn complement_of_vc_is_independent() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::gnp(15, 0.3, &mut rng);
        // all vertices = trivially a VC; complement empty = independent
        let all = vec![true; 15];
        assert!(is_vertex_cover(&g, &all));
        let none = vec![false; 15];
        assert!(is_independent_set(&g, &none));
    }
}
