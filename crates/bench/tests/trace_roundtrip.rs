//! JSONL round-trip: every line the kernel's `JsonlProbe` emits — on
//! CONGEST and MPC workloads, clean and under faults — must be accepted
//! by the `trace_view` validator (`pga_bench::trace`), and the parsed
//! trace must agree with the run's metrics.

use pga_bench::trace::{chrome_trace, parse_line, parse_trace};
use pga_congest::primitives::FloodMax;
use pga_congest::{FaultSpec, JsonlProbe, RunConfig, Simulator};
use pga_graph::{generators, NodeId};
use pga_mpc::{Machine, MachineId, MpcCtx, MpcError, MpcSimulator, WordSize};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Clone, Debug, PartialEq, Eq)]
struct Word(u64);
impl WordSize for Word {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64
    }
    fn size_words(&self) -> usize {
        1
    }
}

/// All-to-all max gossip, the MPC fault/probe suites' workhorse.
struct Gossip {
    best: u64,
    changed: bool,
    quiet: bool,
}

impl Machine for Gossip {
    type Msg = Word;
    type Output = u64;
    fn round(
        &mut self,
        ctx: &MpcCtx,
        inbox: &[(MachineId, Word)],
    ) -> Result<Vec<(MachineId, Word)>, MpcError> {
        for (_, m) in inbox {
            if m.0 > self.best {
                self.best = m.0;
                self.changed = true;
            }
        }
        let send = ctx.round == 0 || self.changed;
        self.changed = false;
        self.quiet = !send;
        if send {
            Ok((0..ctx.machines)
                .filter(|&j| j != ctx.id.index())
                .map(|j| (MachineId::from_index(j), Word(self.best)))
                .collect())
        } else {
            Ok(Vec::new())
        }
    }
    fn memory_words(&self) -> usize {
        4
    }
    fn is_done(&self, _ctx: &MpcCtx) -> bool {
        self.quiet
    }
    fn output(&self, _ctx: &MpcCtx) -> u64 {
        self.best
    }
}

fn every_line_validates(text: &str) {
    for (i, line) in text.lines().enumerate() {
        parse_line(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
    }
}

#[test]
fn congest_jsonl_round_trips_through_the_validator() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = generators::connected_gnm(64, 160, &mut rng);
    let n = g.num_nodes();
    let sim = Simulator::congest(&g);
    let flood = || -> Vec<FloodMax> {
        (0..n)
            .map(|i| FloodMax::new(NodeId::from_index(i)))
            .collect()
    };

    // Clean sharded packed-codec run.
    let probe = JsonlProbe::new(Vec::new(), "congest");
    let cfg = RunConfig::new().parallel(4).codec(true);
    let report = sim.run_cfg_probed(flood(), &cfg, &probe).unwrap();
    let clean = String::from_utf8(probe.into_writer()).unwrap();
    every_line_validates(&clean);

    // Seeded-fault run, appended to the same stream (what PGA_TRACE's
    // append-mode file sees across runs of one process).
    let probe = JsonlProbe::new(Vec::new(), "congest");
    let spec = FaultSpec::seeded(7)
        .drop(0.05)
        .duplicate(0.02)
        .delay(0.03, 3);
    let cfg = RunConfig::new().parallel(2).max_rounds(400).adversary(spec);
    sim.run_cfg_probed(flood(), &cfg, &probe).unwrap();
    let faulty = String::from_utf8(probe.into_writer()).unwrap();
    every_line_validates(&faulty);

    let text = format!("{clean}{faulty}");
    let runs = parse_trace(&text).unwrap();
    assert_eq!(runs.len(), 2);
    assert!(runs.iter().all(|r| r.label == "congest" && r.end.is_some()));

    // The clean run's trace agrees with its metrics.
    assert_eq!(runs[0].rounds.len(), report.metrics.rounds);
    let msgs: u64 = runs[0].rounds.iter().map(|r| r.messages).sum();
    assert_eq!(msgs, report.metrics.messages);
    let bits: u64 = runs[0].rounds.iter().map(|r| r.volume).sum();
    assert_eq!(bits, report.metrics.bits);
    assert_eq!(runs[0].actors, n as u64);
    assert_eq!(runs[0].shards, 4);
    assert!(!runs[0].size_hist().is_empty(), "codec plane records sizes");

    // The faulty run recorded fault deltas.
    assert!(runs[1].total_faults() > 0, "hostile spec must fire");

    // And the whole thing exports to chrome://tracing.
    let doc = chrome_trace(&runs);
    assert!(doc.contains("\"cat\":\"round\""));
    assert!(doc.contains("\"cat\":\"shard\""));
}

#[test]
fn mpc_jsonl_round_trips_through_the_validator() {
    let m = 12;
    let sim = MpcSimulator::new(256);
    let machines: Vec<Gossip> = (0..m)
        .map(|i| Gossip {
            best: (i as u64) * 7 + 1,
            changed: false,
            quiet: false,
        })
        .collect();

    let probe = JsonlProbe::new(Vec::new(), "mpc");
    let cfg = RunConfig::new().parallel(3);
    let report = sim.run_cfg_probed(machines, &cfg, &probe).unwrap();
    let text = String::from_utf8(probe.into_writer()).unwrap();
    every_line_validates(&text);

    let runs = parse_trace(&text).unwrap();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].label, "mpc");
    assert_eq!(runs[0].actors, m as u64);
    assert_eq!(runs[0].rounds.len(), report.metrics.rounds);
    let words: u64 = runs[0].rounds.iter().map(|r| r.volume).sum();
    assert_eq!(words, report.metrics.words);
    assert_eq!(
        runs[0].end.map(|(r, _)| r),
        Some(report.metrics.rounds as u64)
    );
}
