//! Shard-imbalance telemetry on the heavy-tailed Barabási–Albert
//! workload.
//!
//! PR 5's cost-balanced partition (`balanced_partition` over the
//! `actor_cost` hook) fixed the BA hub skew to ~0.03% static imbalance —
//! previously only documented in ROADMAP prose. With the telemetry
//! plane the figure is observable from a run: `RecordingProbe` captures
//! the partition bounds and actor costs at `on_run_start`, so
//! `RunTelemetry::partition_imbalance` now asserts it in CI.

use pga_bench::harness::ShardLoad;
use pga_congest::primitives::FloodMax;
use pga_congest::{RecordingProbe, RunConfig, Simulator};
use pga_graph::{generators, NodeId};

#[test]
fn ba_hub_partition_imbalance_matches_pr5_figure() {
    let g = generators::barabasi_albert(20_000, 8, 42);
    let n = g.num_nodes();
    let sim = Simulator::congest(&g);
    let probe = RecordingProbe::new();
    let cfg = RunConfig::new().parallel(4);
    let nodes = (0..n)
        .map(|i| FloodMax::new(NodeId::from_index(i)))
        .collect();
    let report = sim.run_cfg_probed(nodes, &cfg, &probe).unwrap();
    assert!(report.metrics.rounds > 0);

    let t = probe.into_telemetry();
    assert!(t.completed);
    assert_eq!(t.actors, n);
    assert_eq!(t.bounds.len(), 5, "4 shards -> 5 boundary offsets");
    assert_eq!(t.costs.len(), n);

    // The PR 5 figure: the cost-balanced partition holds the BA hubs to
    // ~0.03% (3e-4) total-cost imbalance across shards. Assert an order
    // of magnitude of slack so instance drift cannot flake the gate
    // while a regression to degree-oblivious splitting (which lands in
    // the tens of percent on BA) still fails loudly.
    let imbalance = t.partition_imbalance();
    assert!(
        imbalance < 3e-3,
        "partition imbalance {imbalance} exceeds 10x the documented ~0.03% figure"
    );

    // Cross-check the probe-derived figure against the harness's own
    // ShardLoad::from_partition on the recorded costs and bounds.
    let loads = ShardLoad::from_partition(&t.costs, &t.bounds);
    assert_eq!(loads.len(), 4);
    let totals: Vec<u64> = loads.iter().map(|l| l.total_cost).collect();
    let max = *totals.iter().max().unwrap() as f64;
    let mean = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
    assert!(
        ((max / mean - 1.0) - imbalance).abs() < 1e-12,
        "ShardLoad and RunTelemetry disagree on the partition imbalance"
    );

    // The dynamic per-round view exists too: every round carries one
    // record per spawned shard, and the round-level imbalance is finite.
    assert!(t
        .rounds
        .iter()
        .all(|r| !r.shards.is_empty() && r.shards.len() <= 4));
    assert!(t.rounds.iter().all(|r| r.shard_imbalance().is_finite()));
}
