//! Criterion micro-benchmarks for the computational kernels behind the
//! experiments: squaring, the exact solvers, the 5/3 algorithm, the
//! CONGEST simulator, and the Lemma-29 estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pga_core::mds::estimator::estimate_two_hop_sizes;
use pga_core::mvc::centralized::five_thirds_vertex_cover;
use pga_core::mvc::congest::{g2_mvc_congest, LocalSolver};
use pga_exact::vc::solve_mvc;
use pga_graph::generators;
use pga_graph::power::square;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_square");
    for n in [100usize, 400, 1600] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::connected_gnp(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| square(g))
        });
    }
    group.finish();
}

fn bench_exact_mvc_on_squares(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_mvc_square");
    for n in [16usize, 24, 32] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g2 = square(&generators::connected_gnp(n, 0.12, &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g2, |b, g2| {
            b.iter(|| solve_mvc(g2))
        });
    }
    group.finish();
}

fn bench_five_thirds(c: &mut Criterion) {
    let mut group = c.benchmark_group("five_thirds");
    for n in [100usize, 300] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g2 = square(&generators::connected_gnp(n, 6.0 / n as f64, &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g2, |b, g2| {
            b.iter(|| five_thirds_vertex_cover(g2))
        });
    }
    group.finish();
}

fn bench_theorem1_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_congest");
    group.sample_size(10);
    for n in [60usize, 120] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::connected_gnp(n, 6.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| g2_mvc_congest(g, 0.5, LocalSolver::FiveThirds).unwrap())
        });
    }
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma29_estimator");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::connected_gnp(60, 0.08, &mut rng);
    let in_u: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
    for r in [32usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| estimate_two_hop_sizes(&g, &in_u, r, 3))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_square,
    bench_exact_mvc_on_squares,
    bench_five_thirds,
    bench_theorem1_simulation,
    bench_estimator
);
criterion_main!(benches);
