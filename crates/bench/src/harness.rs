//! Wall-clock timing and machine-readable benchmark artifacts.
//!
//! The `bench_sim` and `bench_mpc` binaries (and CI's `bench-smoke` job)
//! use this module to time the simulation engines and emit
//! `BENCH_sim.json` / `BENCH_mpc.json`, small hand-rolled JSON documents
//! (the workspace is offline, so no serde). The schemas are documented
//! on [`SimBench`] and [`MpcBench`] and in the README.

use std::io;
use std::path::Path;
use std::time::Instant;

/// Runs `f` once and returns its result together with the elapsed wall
/// time in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Reads a `usize` from the environment, falling back to `default` when
/// the variable is unset or unparsable. The bench binaries' override
/// knobs (`BENCH_SIM_*`, `BENCH_MPC_*`) all go through this.
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// [`env_usize`] for `u64` values (seeds).
pub fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One engine's wall time on one workload.
#[derive(Clone, Debug)]
pub struct EngineTiming {
    /// Engine name: `"sequential"` or `"parallel"` (prefixed `mpc_` in
    /// the MPC document), optionally suffixed with the scheduling
    /// policy for scheduling-comparison workloads
    /// (e.g. `"sequential_active_set"`).
    pub engine: String,
    /// Worker threads used (1 for the sequential engine).
    pub threads: usize,
    /// Best-of-reps wall time in milliseconds.
    pub wall_ms: f64,
}

/// Load statistics of one contiguous shard under the engine's
/// cost-balanced partition (actor cost: CSR degree + 1 for CONGEST
/// vertices, resident words for MPC machines).
#[derive(Clone, Debug)]
pub struct ShardLoad {
    /// First actor id of the shard.
    pub start: usize,
    /// One past the last actor id of the shard.
    pub end: usize,
    /// Total actor cost of the shard.
    pub total_cost: u64,
    /// Smallest single actor cost in the shard.
    pub min_cost: u64,
    /// Largest single actor cost in the shard.
    pub max_cost: u64,
    /// Mean actor cost of the shard.
    pub mean_cost: f64,
}

impl ShardLoad {
    /// Computes the per-shard load statistics of `costs` under the
    /// boundary offsets `bounds` (as returned by
    /// `pga_runtime::balanced_partition`).
    pub fn from_partition(costs: &[u64], bounds: &[usize]) -> Vec<ShardLoad> {
        bounds
            .windows(2)
            .map(|w| {
                let shard = &costs[w[0]..w[1]];
                let total: u64 = shard.iter().sum();
                ShardLoad {
                    start: w[0],
                    end: w[1],
                    total_cost: total,
                    min_cost: shard.iter().copied().min().unwrap_or(0),
                    max_cost: shard.iter().copied().max().unwrap_or(0),
                    mean_cost: if shard.is_empty() {
                        0.0
                    } else {
                        total as f64 / shard.len() as f64
                    },
                }
            })
            .collect()
    }
}

/// Streaming-I/O and compressed-CSR statistics of a `bench_scale`
/// workload (absent on the round-engine workloads).
#[derive(Clone, Debug)]
pub struct IoStats {
    /// Size of the streamed edge-list file in bytes.
    pub file_bytes: u64,
    /// Wall time of the streamed (`BufWriter`) edge-list write, ms.
    pub write_ms: f64,
    /// Wall time of the streamed read (file → chunked builder → CSR), ms.
    pub read_ms: f64,
    /// Heap bytes of the plain CSR representation.
    pub plain_bytes: u64,
    /// Heap bytes of the varint-delta compact CSR blocks
    /// (`pga_graph::compact::CompactGraph`).
    pub compact_bytes: u64,
}

/// One workload's results across engines.
#[derive(Clone, Debug)]
pub struct WorkloadRecord {
    /// Workload name (e.g. `"floodmax"`).
    pub name: String,
    /// Generator family of the instance this workload ran on
    /// (e.g. `"connected_gnm"`, `"barabasi_albert"`).
    pub graph: String,
    /// Vertices of the instance.
    pub n: usize,
    /// Undirected edges of the instance.
    pub m: usize,
    /// Simulated rounds (identical across engines by construction).
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Total message bits delivered.
    pub bits: u64,
    /// Peak per-edge bits in any single round (congestion profile max).
    pub peak_edge_bits: usize,
    /// 95th percentile of the per-round congestion profile
    /// (`Metrics::congestion_percentile(0.95)`) — the typical busy-round
    /// load, robust to a single bursty round.
    pub congestion_p95: usize,
    /// Per-engine wall times: the sequential reference plus one entry
    /// per swept parallel thread count (scheduling-policy pairs for the
    /// quiescent-tail workload).
    pub engines: Vec<EngineTiming>,
    /// Per-shard load statistics under the gate thread count's
    /// cost-balanced partition (empty for workloads that bypass the
    /// parallel engine).
    pub shard_load: Vec<ShardLoad>,
    /// Streaming-I/O and compact-CSR statistics (`bench_scale`
    /// workloads only; `None` elsewhere and then omitted from the
    /// JSON).
    pub io: Option<IoStats>,
    /// Sequential wall time divided by the gate thread count's parallel
    /// wall time (for the scheduling-comparison tail workload:
    /// full-sweep wall time divided by active-set wall time).
    pub speedup: f64,
    /// Whether every engine produced bit-identical outputs and metrics.
    pub identical: bool,
}

/// The `BENCH_sim.json` document: one pinned instance, several workloads,
/// sequential-vs-parallel wall times and the bit-identity verdict.
///
/// Serialized shape:
///
/// ```json
/// {
///   "bench": "sim_round_engine",
///   "seed": 45803,
///   "n": 60000,
///   "m": 240000,
///   "workloads": [
///     {
///       "name": "floodmax",
///       "graph": "connected_gnm",
///       "n": 60000,
///       "m": 240000,
///       "rounds": 11,
///       "messages": 2905060,
///       "bits": 46481000,
///       "peak_edge_bits": 16,
///       "congestion_p95": 16,
///       "engines": [
///         {"engine": "sequential", "threads": 1, "wall_ms": 812.4},
///         {"engine": "parallel", "threads": 2, "wall_ms": 437.0},
///         {"engine": "parallel", "threads": 4, "wall_ms": 287.1},
///         {"engine": "parallel", "threads": 8, "wall_ms": 229.8}
///       ],
///       "shard_load": [
///         {"start": 0, "end": 14923, "total_cost": 135071,
///          "min_cost": 2, "max_cost": 31, "mean_cost": 9.051}
///       ],
///       "speedup": 2.83,
///       "identical": true
///     }
///   ]
/// }
/// ```
///
/// The top-level `n`/`m`/`seed` describe the primary pinned instance;
/// each workload additionally records the instance it actually ran on
/// (`bench_sim` pins a second Barabási–Albert instance and a
/// quiescent-tail "lollipop" instance). The `engines` array sweeps the
/// parallel engine over thread counts {2, 4, 8} next to the sequential
/// reference, so the document captures a scaling trajectory rather
/// than a single parallel point; `speedup` compares the sequential
/// entry against the gate thread count (4 by default). `shard_load`
/// records the cost-balanced partition the gate thread count uses
/// (per shard: actor range, total/min/max/mean actor cost). For the
/// tail workload the `engines` entries compare scheduling policies as
/// well as executors (`sequential_full_sweep`, `sequential_active_set`,
/// `parallel_full_sweep`, `parallel_active_set`) and `speedup` is the
/// sequential full-sweep wall time divided by the sequential active-set
/// wall time.
#[derive(Clone, Debug)]
pub struct SimBench {
    /// Benchmark family identifier (`"sim_round_engine"`).
    pub bench: String,
    /// RNG seed that pins the instance.
    pub seed: u64,
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Per-workload results.
    pub workloads: Vec<WorkloadRecord>,
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes one workload record as a four-space-indented JSON object
/// (no trailing comma or newline) — the exact shape
/// [`SimBench::to_json`] emits and [`merge_scale_workloads`] splices.
fn workload_json(w: &WorkloadRecord) -> String {
    let mut s = String::new();
    s.push_str("    {\n");
    s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&w.name)));
    s.push_str(&format!(
        "      \"graph\": \"{}\",\n",
        json_escape(&w.graph)
    ));
    s.push_str(&format!("      \"n\": {},\n", w.n));
    s.push_str(&format!("      \"m\": {},\n", w.m));
    s.push_str(&format!("      \"rounds\": {},\n", w.rounds));
    s.push_str(&format!("      \"messages\": {},\n", w.messages));
    s.push_str(&format!("      \"bits\": {},\n", w.bits));
    s.push_str(&format!(
        "      \"peak_edge_bits\": {},\n",
        w.peak_edge_bits
    ));
    s.push_str(&format!(
        "      \"congestion_p95\": {},\n",
        w.congestion_p95
    ));
    s.push_str("      \"engines\": [\n");
    for (ei, e) in w.engines.iter().enumerate() {
        s.push_str(&format!(
            "        {{\"engine\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}}}{}\n",
            json_escape(&e.engine),
            e.threads,
            e.wall_ms,
            if ei + 1 < w.engines.len() { "," } else { "" }
        ));
    }
    s.push_str("      ],\n");
    s.push_str("      \"shard_load\": [\n");
    for (li, l) in w.shard_load.iter().enumerate() {
        s.push_str(&format!(
            "        {{\"start\": {}, \"end\": {}, \"total_cost\": {}, \
             \"min_cost\": {}, \"max_cost\": {}, \"mean_cost\": {:.3}}}{}\n",
            l.start,
            l.end,
            l.total_cost,
            l.min_cost,
            l.max_cost,
            l.mean_cost,
            if li + 1 < w.shard_load.len() { "," } else { "" }
        ));
    }
    s.push_str("      ],\n");
    if let Some(io) = &w.io {
        s.push_str(&format!(
            "      \"io\": {{\"file_bytes\": {}, \"write_ms\": {:.3}, \"read_ms\": {:.3}, \
             \"plain_bytes\": {}, \"compact_bytes\": {}}},\n",
            io.file_bytes, io.write_ms, io.read_ms, io.plain_bytes, io.compact_bytes
        ));
    }
    s.push_str(&format!("      \"speedup\": {:.3},\n", w.speedup));
    s.push_str(&format!("      \"identical\": {}\n", w.identical));
    s.push_str("    }");
    s
}

impl SimBench {
    /// Serializes the document to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"n\": {},\n", self.n));
        s.push_str(&format!("  \"m\": {},\n", self.m));
        s.push_str("  \"workloads\": [\n");
        let objs: Vec<String> = self.workloads.iter().map(workload_json).collect();
        s.push_str(&objs.join(",\n"));
        s.push('\n');
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Splits a serialized `BENCH_sim.json` document into the text before
/// the `workloads` array, the individual workload object strings (as
/// [`workload_json`] emits them, trailing commas stripped), and the
/// text after the array. Returns `None` when the document is not in
/// the shape [`SimBench::to_json`] writes.
///
/// Like [`parse_engine_walls`], this is a purposely narrow reader of
/// the documents this module itself serializes: workload objects are
/// delimited by the fixed-indent `    {` / `    }` lines (nested
/// objects sit deeper or on one line), so no general JSON parsing is
/// needed.
fn split_sim_doc(doc: &str) -> Option<(String, Vec<String>, String)> {
    let marker = "  \"workloads\": [\n";
    let start = doc.find(marker)? + marker.len();
    let prefix = doc[..start].to_string();
    let rest = &doc[start..];
    let end = rest.find("\n  ]")?;
    let body = &rest[..end];
    let suffix = rest[end + 1..].to_string();
    let mut objs = Vec::new();
    let mut cur: Option<String> = None;
    for line in body.lines() {
        match (&mut cur, line) {
            (None, "    {") => cur = Some(String::from("    {\n")),
            (Some(c), "    }" | "    },") => {
                c.push_str("    }");
                objs.push(cur.take().unwrap());
            }
            (Some(c), l) => {
                c.push_str(l);
                c.push('\n');
            }
            (None, _) => return None,
        }
    }
    if cur.is_some() {
        return None;
    }
    Some((prefix, objs, suffix))
}

/// Splices `scale`'s workload records into an existing `BENCH_sim.json`
/// document, replacing any previous workload whose name starts with
/// `"scale_"` and keeping everything else (the `bench_sim` round-engine
/// records) byte-for-byte. Falls back to `scale.to_json()` when
/// `existing` is `None` or not in the expected shape, so `bench_scale`
/// can run standalone or after `bench_sim` in either order.
pub fn merge_scale_workloads(existing: Option<&str>, scale: &SimBench) -> String {
    let fresh: Vec<String> = scale.workloads.iter().map(workload_json).collect();
    match existing.and_then(split_sim_doc) {
        Some((prefix, objs, suffix)) => {
            let mut kept: Vec<String> = objs
                .into_iter()
                .filter(|o| !o.contains("\"name\": \"scale_"))
                .collect();
            kept.extend(fresh);
            format!("{}{}\n{}", prefix, kept.join(",\n"), suffix)
        }
        None => scale.to_json(),
    }
}

/// One MPC workload's record in `BENCH_mpc.json`.
///
/// For adapter workloads the reference is the sequential CONGEST engine
/// and `congest_rounds` is the simulated round count; for native MPC
/// workloads (the ruling set) the reference is the sequential oracle
/// and `congest_rounds` is 0.
#[derive(Clone, Debug)]
pub struct MpcWorkloadRecord {
    /// Workload name (e.g. `"floodmax_adapter"`, `"ruling_set"`).
    pub name: String,
    /// Generator family of the instance.
    pub graph: String,
    /// Vertices of the instance.
    pub n: usize,
    /// Undirected edges of the instance.
    pub m: usize,
    /// Seed pinning the instance.
    pub seed: u64,
    /// Per-machine memory budget `S` in words.
    pub memory_words: usize,
    /// Machines the vertex set was partitioned onto.
    pub machines: usize,
    /// CONGEST rounds of the simulated algorithm (0 for native MPC
    /// workloads).
    pub congest_rounds: usize,
    /// MPC rounds executed.
    pub mpc_rounds: usize,
    /// MPC messages exchanged between machines.
    pub mpc_messages: u64,
    /// MPC communication volume in words.
    pub mpc_words: u64,
    /// Peak per-machine memory observed, in words (≤ `memory_words`).
    pub peak_memory_words: usize,
    /// Peak per-machine, per-round I/O in words (≤ `memory_words`).
    pub peak_round_io_words: usize,
    /// Wall time of the reference execution in milliseconds.
    pub wall_ms_reference: f64,
    /// Wall time of the MPC execution on the sequential engine in
    /// milliseconds (same value as the `mpc_sequential` entry of
    /// [`MpcWorkloadRecord::engines`], kept for schema continuity).
    pub wall_ms_mpc: f64,
    /// Per-engine wall times of the MPC execution: `mpc_sequential`
    /// plus one `mpc_parallel` entry per swept thread count.
    pub engines: Vec<EngineTiming>,
    /// Whether the MPC execution reproduced the reference bit for bit
    /// on every engine.
    pub identical: bool,
}

/// The `BENCH_mpc.json` document: pinned instances run through the MPC
/// engine (CONGEST adapter + native workloads) with resource accounting
/// and the bit-identity verdict.
///
/// Serialized shape:
///
/// ```json
/// {
///   "bench": "mpc_model",
///   "workloads": [
///     {
///       "name": "floodmax_adapter",
///       "graph": "connected_gnm",
///       "n": 20000, "m": 60000, "seed": 45803,
///       "memory_words": 4096, "machines": 163,
///       "congest_rounds": 12, "mpc_rounds": 12,
///       "mpc_messages": 24310, "mpc_words": 882120,
///       "peak_memory_words": 2048, "peak_round_io_words": 1930,
///       "wall_ms_reference": 101.2, "wall_ms_mpc": 220.9,
///       "identical": true
///     }
///   ]
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MpcBench {
    /// Benchmark family identifier (`"mpc_model"`).
    pub bench: String,
    /// Per-workload results.
    pub workloads: Vec<MpcWorkloadRecord>,
}

impl MpcBench {
    /// Serializes the document to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&w.name)));
            s.push_str(&format!(
                "      \"graph\": \"{}\",\n",
                json_escape(&w.graph)
            ));
            s.push_str(&format!("      \"n\": {},\n", w.n));
            s.push_str(&format!("      \"m\": {},\n", w.m));
            s.push_str(&format!("      \"seed\": {},\n", w.seed));
            s.push_str(&format!("      \"memory_words\": {},\n", w.memory_words));
            s.push_str(&format!("      \"machines\": {},\n", w.machines));
            s.push_str(&format!(
                "      \"congest_rounds\": {},\n",
                w.congest_rounds
            ));
            s.push_str(&format!("      \"mpc_rounds\": {},\n", w.mpc_rounds));
            s.push_str(&format!("      \"mpc_messages\": {},\n", w.mpc_messages));
            s.push_str(&format!("      \"mpc_words\": {},\n", w.mpc_words));
            s.push_str(&format!(
                "      \"peak_memory_words\": {},\n",
                w.peak_memory_words
            ));
            s.push_str(&format!(
                "      \"peak_round_io_words\": {},\n",
                w.peak_round_io_words
            ));
            s.push_str(&format!(
                "      \"wall_ms_reference\": {:.3},\n",
                w.wall_ms_reference
            ));
            s.push_str(&format!("      \"wall_ms_mpc\": {:.3},\n", w.wall_ms_mpc));
            s.push_str("      \"engines\": [\n");
            for (ei, e) in w.engines.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"engine\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}}}{}\n",
                    json_escape(&e.engine),
                    e.threads,
                    e.wall_ms,
                    if ei + 1 < w.engines.len() { "," } else { "" }
                ));
            }
            s.push_str("      ],\n");
            s.push_str(&format!("      \"identical\": {}\n", w.identical));
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// One engine timing extracted from a serialized bench document:
/// `(workload, engine, threads, wall_ms)`.
pub type EngineWall = (String, String, usize, f64);

/// Extracts every `engines[]` timing entry from a `BENCH_sim.json` /
/// `BENCH_mpc.json` document, tagged with its workload name.
///
/// This is a purposely narrow line-oriented reader of the documents
/// this module itself serializes (the workspace is offline, so no
/// serde): it keys on the `"name":` line of each workload object and
/// the one-line `{"engine": …, "threads": …, "wall_ms": …}` entries.
/// The `bench_regress` binary uses it to diff fresh runs against the
/// committed snapshots.
pub fn parse_engine_walls(json: &str) -> Vec<EngineWall> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
    let mut out = Vec::new();
    let mut workload = String::new();
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"name\": \"") {
            if let Some(end) = rest.find('"') {
                workload = rest[..end].to_string();
            }
        } else if let Some(rest) = t.strip_prefix("{\"engine\": \"") {
            let engine = rest.split('"').next().unwrap_or("").to_string();
            let threads = field(t, "\"threads\": ").and_then(|v| v.parse().ok());
            let wall_ms = field(t, "\"wall_ms\": ").and_then(|v| v.parse().ok());
            if let (Some(threads), Some(wall_ms)) = (threads, wall_ms) {
                out.push((workload.clone(), engine, threads, wall_ms));
            }
        }
    }
    out
}

/// One cell of the fault-injection degradation sweep in
/// `BENCH_fault.json`: a single `(workload, FaultSpec)` pair.
///
/// All fault rates are recorded in parts-per-million, exactly as the
/// `FaultSpec` carries them, so the record is `Eq`-comparable without
/// float noise. `wall_ms` is the only non-deterministic field — the
/// regression gate strips it (see [`fault_fingerprint`]).
#[derive(Clone, Debug)]
pub struct FaultRecord {
    /// Workload name (e.g. `"mvc_gnm"`, `"ruling_set_gnm"`).
    pub workload: String,
    /// Delivery pipeline the cell ran under: `"raw"` (faulted channels,
    /// no recovery), `"arq"` (sliding-window ack/retransmit), or
    /// `"arq_timeout"` (ARQ plus phase-level deadlines with
    /// partial-aggregate fallback).
    pub pipeline: String,
    /// Generator family of the instance.
    pub graph: String,
    /// Vertices of the instance.
    pub n: usize,
    /// Undirected edges of the instance.
    pub m: usize,
    /// Fault seed of this cell's `FaultSpec`.
    pub seed: u64,
    /// Per-message drop probability in ppm.
    pub drop_ppm: u32,
    /// Per-message duplication probability in ppm.
    pub dup_ppm: u32,
    /// Per-message delay probability in ppm.
    pub delay_ppm: u32,
    /// Per-actor crash probability in ppm.
    pub crash_ppm: u32,
    /// Whether the run terminated within the round budget (a `false`
    /// here is the adversary starving the algorithm, not a harness
    /// failure).
    pub converged: bool,
    /// Why a non-converged cell stalled: `Some("round_limit")` when the
    /// round/tick budget ran out with every link still alive,
    /// `Some("dead_link")` when the ARQ retry budget (or a crash sever)
    /// killed a link and the algorithm waited forever for its traffic.
    /// `None` on converged cells.
    pub stall: Option<String>,
    /// Whether the converged output still satisfies the workload's
    /// correctness predicate (vertex cover of `G²`, dominating set of
    /// `G²`, …). Always `true` at zero fault rates; under faults this
    /// is the headline degradation signal.
    pub valid: bool,
    /// Rounds executed (0 when the run did not converge).
    pub rounds: usize,
    /// The kernel's convergence detector: first round from which the
    /// message plane stayed quiet.
    pub convergence_round: usize,
    /// Output size (cover / dominating-set / ruling-set cardinality).
    pub output_size: usize,
    /// Output size of the fault-free run on the same instance.
    pub clean_size: usize,
    /// `output_size / clean_size` (0 when the run did not converge) —
    /// the approximation-degradation ratio the sweep plots.
    pub degradation: f64,
    /// Messages delivered (fault plane accounting).
    pub delivered: u64,
    /// Messages dropped by the adversary.
    pub dropped: u64,
    /// Extra copies injected by the adversary.
    pub duplicated: u64,
    /// Messages delayed by the adversary.
    pub delayed: u64,
    /// Actors crashed during the run.
    pub crashed: u64,
    /// Data frames retransmitted by the reliable executor (0 on the raw
    /// pipeline) — the congestion price of reliability.
    pub retransmitted: u64,
    /// Cumulative ack frames the reliable executor transmitted.
    pub acks: u64,
    /// Links declared dead (ARQ retry exhaustion or crash sever).
    pub dead_links: u64,
    /// Phases that hit their deadline and fell back to a partial
    /// aggregate (`arq_timeout` pipeline only).
    pub degraded: u64,
    /// Whether re-executing the same `(seed, FaultSpec)` on a different
    /// engine (or replaying the recorded trace) reproduced the run bit
    /// for bit — the replay-determinism gate.
    pub replay_identical: bool,
    /// Wall time of the primary run in milliseconds (informational;
    /// excluded from the determinism fingerprint).
    pub wall_ms: f64,
}

/// The `BENCH_fault.json` document: pinned instances swept over a grid
/// of drop rates and crash fractions, each cell executed under all
/// three delivery pipelines (`raw`, `arq`, `arq_timeout`), recording
/// convergence, validity, approximation degradation, fault- and
/// reliability-plane accounting, and the replay-identity verdict per
/// cell.
///
/// Serialized shape:
///
/// ```json
/// {
///   "bench": "fault_plane",
///   "seed": 45803,
///   "workloads": [
///     {
///       "workload": "mvc_gnm",
///       "pipeline": "arq",
///       "graph": "connected_gnm",
///       "n": 96, "m": 288, "seed": 45803,
///       "drop_ppm": 50000, "dup_ppm": 0, "delay_ppm": 0, "crash_ppm": 0,
///       "converged": true, "stall": null, "valid": true,
///       "rounds": 41, "convergence_round": 39,
///       "output_size": 64, "clean_size": 61, "degradation": 1.049,
///       "delivered": 5120, "dropped": 270, "duplicated": 0,
///       "delayed": 0, "crashed": 0,
///       "retransmitted": 264, "acks": 4890, "dead_links": 0,
///       "degraded": 0,
///       "replay_identical": true,
///       "wall_ms": 3.1
///     }
///   ]
/// }
/// ```
///
/// `stall` is `null` on converged cells, `"round_limit"` when the
/// round/tick budget starved the run with all links alive, and
/// `"dead_link"` when ARQ retry exhaustion (or a crash sever) killed a
/// link the algorithm was waiting on.
///
/// Everything except `wall_ms` is a pure function of
/// `(instance seed, FaultSpec)`, so CI diffs the committed snapshot
/// against a fresh run byte-for-byte after stripping the timing lines
/// ([`fault_fingerprint`]); a mismatch means fault decisions stopped
/// being schedule-independent.
#[derive(Clone, Debug)]
pub struct FaultBench {
    /// Benchmark family identifier (`"fault_plane"`).
    pub bench: String,
    /// RNG seed pinning the instances (fault seeds derive from it).
    pub seed: u64,
    /// Per-cell results.
    pub workloads: Vec<FaultRecord>,
}

impl FaultBench {
    /// Serializes the document to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!(
                "      \"workload\": \"{}\",\n",
                json_escape(&w.workload)
            ));
            s.push_str(&format!(
                "      \"pipeline\": \"{}\",\n",
                json_escape(&w.pipeline)
            ));
            s.push_str(&format!(
                "      \"graph\": \"{}\",\n",
                json_escape(&w.graph)
            ));
            s.push_str(&format!("      \"n\": {},\n", w.n));
            s.push_str(&format!("      \"m\": {},\n", w.m));
            s.push_str(&format!("      \"seed\": {},\n", w.seed));
            s.push_str(&format!("      \"drop_ppm\": {},\n", w.drop_ppm));
            s.push_str(&format!("      \"dup_ppm\": {},\n", w.dup_ppm));
            s.push_str(&format!("      \"delay_ppm\": {},\n", w.delay_ppm));
            s.push_str(&format!("      \"crash_ppm\": {},\n", w.crash_ppm));
            s.push_str(&format!("      \"converged\": {},\n", w.converged));
            s.push_str(&format!(
                "      \"stall\": {},\n",
                match &w.stall {
                    Some(why) => format!("\"{}\"", json_escape(why)),
                    None => "null".to_string(),
                }
            ));
            s.push_str(&format!("      \"valid\": {},\n", w.valid));
            s.push_str(&format!("      \"rounds\": {},\n", w.rounds));
            s.push_str(&format!(
                "      \"convergence_round\": {},\n",
                w.convergence_round
            ));
            s.push_str(&format!("      \"output_size\": {},\n", w.output_size));
            s.push_str(&format!("      \"clean_size\": {},\n", w.clean_size));
            s.push_str(&format!("      \"degradation\": {:.3},\n", w.degradation));
            s.push_str(&format!("      \"delivered\": {},\n", w.delivered));
            s.push_str(&format!("      \"dropped\": {},\n", w.dropped));
            s.push_str(&format!("      \"duplicated\": {},\n", w.duplicated));
            s.push_str(&format!("      \"delayed\": {},\n", w.delayed));
            s.push_str(&format!("      \"crashed\": {},\n", w.crashed));
            s.push_str(&format!("      \"retransmitted\": {},\n", w.retransmitted));
            s.push_str(&format!("      \"acks\": {},\n", w.acks));
            s.push_str(&format!("      \"dead_links\": {},\n", w.dead_links));
            s.push_str(&format!("      \"degraded\": {},\n", w.degraded));
            s.push_str(&format!(
                "      \"replay_identical\": {},\n",
                w.replay_identical
            ));
            s.push_str(&format!("      \"wall_ms\": {:.3}\n", w.wall_ms));
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The determinism fingerprint of a `BENCH_fault.json` document: the
/// serialized text with every timing line removed — any line whose
/// field name starts with `wall_` (`wall_ms` today; `wall_ns` and
/// friends as the telemetry plane grows the schema). Everything that
/// remains is a pure function of `(instance seed, FaultSpec)`, so the
/// `bench_regress --fault` gate compares fingerprints byte-for-byte
/// across machines and runs.
pub fn fault_fingerprint(json: &str) -> String {
    json.lines()
        .filter(|l| !l.trim_start().starts_with("\"wall_"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimBench {
        SimBench {
            bench: "sim_round_engine".into(),
            seed: 7,
            n: 100,
            m: 250,
            workloads: vec![WorkloadRecord {
                name: "floodmax".into(),
                graph: "connected_gnm".into(),
                n: 100,
                m: 250,
                rounds: 9,
                messages: 1234,
                bits: 9999,
                peak_edge_bits: 16,
                congestion_p95: 12,
                engines: vec![
                    EngineTiming {
                        engine: "sequential".into(),
                        threads: 1,
                        wall_ms: 10.5,
                    },
                    EngineTiming {
                        engine: "parallel".into(),
                        threads: 4,
                        wall_ms: 4.2,
                    },
                ],
                shard_load: vec![
                    ShardLoad {
                        start: 0,
                        end: 40,
                        total_cost: 260,
                        min_cost: 2,
                        max_cost: 31,
                        mean_cost: 6.5,
                    },
                    ShardLoad {
                        start: 40,
                        end: 100,
                        total_cost: 255,
                        min_cost: 1,
                        max_cost: 9,
                        mean_cost: 4.25,
                    },
                ],
                io: None,
                speedup: 2.5,
                identical: true,
            }],
        }
    }

    fn scale_sample() -> SimBench {
        SimBench {
            bench: "sim_scale".into(),
            seed: 7,
            n: 1_000_000,
            m: 4_000_000,
            workloads: vec![WorkloadRecord {
                name: "scale_floodmax".into(),
                graph: "connected_gnm".into(),
                n: 1_000_000,
                m: 4_000_000,
                rounds: 7,
                messages: 56_000_000,
                bits: 1_120_000_000,
                peak_edge_bits: 20,
                congestion_p95: 20,
                engines: vec![
                    EngineTiming {
                        engine: "sequential".into(),
                        threads: 1,
                        wall_ms: 9000.0,
                    },
                    EngineTiming {
                        engine: "parallel".into(),
                        threads: 4,
                        wall_ms: 4000.0,
                    },
                    EngineTiming {
                        engine: "parallel_codec".into(),
                        threads: 4,
                        wall_ms: 3500.0,
                    },
                ],
                shard_load: Vec::new(),
                io: Some(IoStats {
                    file_bytes: 60_000_000,
                    write_ms: 900.0,
                    read_ms: 1800.0,
                    plain_bytes: 40_000_008,
                    compact_bytes: 11_000_000,
                }),
                speedup: 2.57,
                identical: true,
            }],
        }
    }

    fn sample_mpc() -> MpcBench {
        MpcBench {
            bench: "mpc_model".into(),
            workloads: vec![MpcWorkloadRecord {
                name: "floodmax_adapter".into(),
                graph: "barabasi_albert".into(),
                n: 500,
                m: 1491,
                seed: 11,
                memory_words: 2048,
                machines: 9,
                congest_rounds: 7,
                mpc_rounds: 7,
                mpc_messages: 120,
                mpc_words: 4400,
                peak_memory_words: 1100,
                peak_round_io_words: 800,
                wall_ms_reference: 3.5,
                wall_ms_mpc: 6.25,
                engines: vec![
                    EngineTiming {
                        engine: "mpc_sequential".into(),
                        threads: 1,
                        wall_ms: 6.25,
                    },
                    EngineTiming {
                        engine: "mpc_parallel".into(),
                        threads: 4,
                        wall_ms: 3.75,
                    },
                ],
                identical: true,
            }],
        }
    }

    #[test]
    fn json_contains_schema_fields() {
        let j = sample().to_json();
        for needle in [
            "\"bench\": \"sim_round_engine\"",
            "\"n\": 100",
            "\"m\": 250",
            "\"graph\": \"connected_gnm\"",
            "\"rounds\": 9",
            "\"peak_edge_bits\": 16",
            "\"congestion_p95\": 12",
            "\"engine\": \"parallel\", \"threads\": 4",
            "\"start\": 40, \"end\": 100, \"total_cost\": 255",
            "\"min_cost\": 2, \"max_cost\": 31, \"mean_cost\": 6.500",
            "\"speedup\": 2.500",
            "\"identical\": true",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn parse_engine_walls_roundtrips() {
        let walls = parse_engine_walls(&sample().to_json());
        assert_eq!(
            walls,
            vec![
                ("floodmax".into(), "sequential".into(), 1, 10.5),
                ("floodmax".into(), "parallel".into(), 4, 4.2),
            ]
        );
        let walls = parse_engine_walls(&sample_mpc().to_json());
        assert_eq!(
            walls,
            vec![
                ("floodmax_adapter".into(), "mpc_sequential".into(), 1, 6.25),
                ("floodmax_adapter".into(), "mpc_parallel".into(), 4, 3.75),
            ]
        );
    }

    #[test]
    fn mpc_json_contains_schema_fields() {
        let j = sample_mpc().to_json();
        for needle in [
            "\"bench\": \"mpc_model\"",
            "\"name\": \"floodmax_adapter\"",
            "\"graph\": \"barabasi_albert\"",
            "\"memory_words\": 2048",
            "\"machines\": 9",
            "\"congest_rounds\": 7",
            "\"mpc_rounds\": 7",
            "\"mpc_words\": 4400",
            "\"peak_memory_words\": 1100",
            "\"peak_round_io_words\": 800",
            "\"wall_ms_reference\": 3.500",
            "\"wall_ms_mpc\": 6.250",
            "\"engine\": \"mpc_parallel\", \"threads\": 4",
            "\"identical\": true",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn io_stats_serialized_when_present() {
        let j = scale_sample().to_json();
        assert!(j.contains(
            "\"io\": {\"file_bytes\": 60000000, \"write_ms\": 900.000, \
             \"read_ms\": 1800.000, \"plain_bytes\": 40000008, \"compact_bytes\": 11000000}"
        ));
        assert!(j.contains("\"engine\": \"parallel_codec\", \"threads\": 4"));
        // And omitted when absent.
        assert!(!sample().to_json().contains("\"io\""));
    }

    #[test]
    fn merge_appends_scale_and_keeps_existing() {
        let base = sample().to_json();
        let merged = merge_scale_workloads(Some(&base), &scale_sample());
        assert!(merged.contains("\"name\": \"floodmax\""));
        assert!(merged.contains("\"name\": \"scale_floodmax\""));
        // The round-engine prefix (bench id, pinned instance) survives.
        assert!(merged.starts_with("{\n  \"bench\": \"sim_round_engine\""));
        // Re-merging replaces the old scale record instead of stacking.
        let mut second = scale_sample();
        second.workloads[0].rounds = 9;
        let remerged = merge_scale_workloads(Some(&merged), &second);
        assert_eq!(remerged.matches("\"name\": \"scale_floodmax\"").count(), 1);
        assert!(remerged.contains("\"rounds\": 9"));
        // Engine walls of both documents are visible to bench_regress.
        let walls = parse_engine_walls(&remerged);
        assert!(walls
            .iter()
            .any(|(w, e, t, _)| w == "floodmax" && e == "sequential" && *t == 1));
        assert!(walls
            .iter()
            .any(|(w, e, t, _)| w == "scale_floodmax" && e == "parallel_codec" && *t == 4));
    }

    #[test]
    fn merge_without_existing_falls_back_to_plain_document() {
        let doc = merge_scale_workloads(None, &scale_sample());
        assert_eq!(doc, scale_sample().to_json());
        // Garbage input also falls back rather than corrupting.
        let doc = merge_scale_workloads(Some("not json"), &scale_sample());
        assert_eq!(doc, scale_sample().to_json());
    }

    #[test]
    fn merged_json_stays_balanced() {
        let merged = merge_scale_workloads(Some(&sample().to_json()), &scale_sample());
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                merged.matches(open).count(),
                merged.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert!(!merged.contains(",\n  ]"), "trailing comma:\n{merged}");
        assert!(!merged.contains("}\n    {"), "missing comma:\n{merged}");
    }

    #[test]
    fn json_is_balanced() {
        for j in [
            sample().to_json(),
            sample_mpc().to_json(),
            scale_sample().to_json(),
        ] {
            for (open, close) in [('{', '}'), ('[', ']')] {
                assert_eq!(
                    j.matches(open).count(),
                    j.matches(close).count(),
                    "unbalanced {open}{close}"
                );
            }
            // No trailing comma before a closer (the classic
            // hand-rolled-JSON bug).
            assert!(!j.contains(",\n  ]"), "trailing comma:\n{j}");
            assert!(!j.contains(",\n    ]"), "trailing comma:\n{j}");
        }
    }

    #[test]
    fn shard_load_from_partition() {
        let costs = [10u64, 1, 1, 4, 4];
        let loads = ShardLoad::from_partition(&costs, &[0, 1, 5]);
        assert_eq!(loads.len(), 2);
        assert_eq!(
            (loads[0].start, loads[0].end, loads[0].total_cost),
            (0, 1, 10)
        );
        assert_eq!(
            (loads[1].min_cost, loads[1].max_cost, loads[1].total_cost),
            (1, 4, 10)
        );
        assert!((loads[1].mean_cost - 2.5).abs() < 1e-9);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn time_ms_measures() {
        let (v, ms) = time_ms(|| (0..10_000u64).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(ms >= 0.0);
    }

    fn fault_sample(wall_ms: f64) -> FaultBench {
        FaultBench {
            bench: "fault_plane".into(),
            seed: 45803,
            workloads: vec![FaultRecord {
                workload: "mvc_gnm".into(),
                pipeline: "arq".into(),
                graph: "connected_gnm".into(),
                n: 96,
                m: 288,
                seed: 45803,
                drop_ppm: 50_000,
                dup_ppm: 0,
                delay_ppm: 0,
                crash_ppm: 0,
                converged: true,
                stall: None,
                valid: true,
                rounds: 41,
                convergence_round: 39,
                output_size: 64,
                clean_size: 61,
                degradation: 64.0 / 61.0,
                delivered: 5120,
                dropped: 270,
                duplicated: 0,
                delayed: 0,
                crashed: 0,
                retransmitted: 264,
                acks: 4890,
                dead_links: 0,
                degraded: 0,
                replay_identical: true,
                wall_ms,
            }],
        }
    }

    #[test]
    fn fault_bench_serializes_and_fingerprints() {
        let doc = fault_sample(3.25).to_json();
        assert!(doc.contains("\"bench\": \"fault_plane\""));
        assert!(doc.contains("\"drop_ppm\": 50000"));
        assert!(doc.contains("\"pipeline\": \"arq\""));
        assert!(doc.contains("\"stall\": null"));
        assert!(doc.contains("\"retransmitted\": 264"));
        assert!(doc.contains("\"acks\": 4890"));
        assert!(doc.contains("\"replay_identical\": true"));
        assert!(doc.contains("\"wall_ms\": 3.250"));
        // A stalled cell names its cause as a JSON string.
        let mut stalled = fault_sample(1.0);
        stalled.workloads[0].converged = false;
        stalled.workloads[0].stall = Some("dead_link".into());
        assert!(stalled.to_json().contains("\"stall\": \"dead_link\""));
        // The fingerprint is timing-invariant and nothing else.
        let other = fault_sample(99.0).to_json();
        assert_ne!(doc, other);
        assert_eq!(fault_fingerprint(&doc), fault_fingerprint(&other));
        assert!(!fault_fingerprint(&doc).contains("wall_ms"));
    }

    #[test]
    fn fault_fingerprint_strips_any_wall_field() {
        // The stripper keys on the `wall_` prefix so future telemetry
        // fields (per-round `wall_ns`, `wall_ms_reference`, …) stay out
        // of the determinism fingerprint without further edits.
        let doc = "{\n  \"wall_ms\": 1.0,\n  \"wall_ns\": 12345,\n  \
                   \"wall_ms_reference\": 2.0,\n  \"rounds\": 7\n}";
        let fp = fault_fingerprint(doc);
        assert!(!fp.contains("wall_"));
        assert!(fp.contains("\"rounds\": 7"));
        // Non-timing fields that merely contain "wall" elsewhere survive.
        let keep = "  \"firewall\": 1";
        assert_eq!(fault_fingerprint(keep), keep);
    }
}
