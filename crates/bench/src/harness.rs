//! Wall-clock timing and machine-readable benchmark artifacts.
//!
//! The `bench_sim` binary (and CI's `bench-smoke` job) use this module to
//! time the simulation engines and emit `BENCH_sim.json`, a small
//! hand-rolled JSON document (the workspace is offline, so no serde). The
//! schema is documented on [`SimBench`] and in the README's "Simulation
//! engines" section.

use std::io;
use std::path::Path;
use std::time::Instant;

/// Runs `f` once and returns its result together with the elapsed wall
/// time in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// One engine's wall time on one workload.
#[derive(Clone, Debug)]
pub struct EngineTiming {
    /// Engine name: `"sequential"` or `"parallel"`.
    pub engine: String,
    /// Worker threads used (1 for the sequential engine).
    pub threads: usize,
    /// Best-of-reps wall time in milliseconds.
    pub wall_ms: f64,
}

/// One workload's results across engines.
#[derive(Clone, Debug)]
pub struct WorkloadRecord {
    /// Workload name (e.g. `"floodmax"`).
    pub name: String,
    /// Simulated rounds (identical across engines by construction).
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Total message bits delivered.
    pub bits: u64,
    /// Peak per-edge bits in any single round (congestion profile max).
    pub peak_edge_bits: usize,
    /// Per-engine wall times.
    pub engines: Vec<EngineTiming>,
    /// Sequential wall time divided by the best parallel wall time.
    pub speedup: f64,
    /// Whether every engine produced bit-identical outputs and metrics.
    pub identical: bool,
}

/// The `BENCH_sim.json` document: one pinned instance, several workloads,
/// sequential-vs-parallel wall times and the bit-identity verdict.
///
/// Serialized shape:
///
/// ```json
/// {
///   "bench": "sim_round_engine",
///   "seed": 45803,
///   "n": 60000,
///   "m": 240000,
///   "workloads": [
///     {
///       "name": "floodmax",
///       "rounds": 11,
///       "messages": 2905060,
///       "bits": 46481000,
///       "peak_edge_bits": 16,
///       "engines": [
///         {"engine": "sequential", "threads": 1, "wall_ms": 812.4},
///         {"engine": "parallel", "threads": 4, "wall_ms": 287.1}
///       ],
///       "speedup": 2.83,
///       "identical": true
///     }
///   ]
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SimBench {
    /// Benchmark family identifier (`"sim_round_engine"`).
    pub bench: String,
    /// RNG seed that pins the instance.
    pub seed: u64,
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Per-workload results.
    pub workloads: Vec<WorkloadRecord>,
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SimBench {
    /// Serializes the document to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"n\": {},\n", self.n));
        s.push_str(&format!("  \"m\": {},\n", self.m));
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&w.name)));
            s.push_str(&format!("      \"rounds\": {},\n", w.rounds));
            s.push_str(&format!("      \"messages\": {},\n", w.messages));
            s.push_str(&format!("      \"bits\": {},\n", w.bits));
            s.push_str(&format!(
                "      \"peak_edge_bits\": {},\n",
                w.peak_edge_bits
            ));
            s.push_str("      \"engines\": [\n");
            for (ei, e) in w.engines.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"engine\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}}}{}\n",
                    json_escape(&e.engine),
                    e.threads,
                    e.wall_ms,
                    if ei + 1 < w.engines.len() { "," } else { "" }
                ));
            }
            s.push_str("      ],\n");
            s.push_str(&format!("      \"speedup\": {:.3},\n", w.speedup));
            s.push_str(&format!("      \"identical\": {}\n", w.identical));
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimBench {
        SimBench {
            bench: "sim_round_engine".into(),
            seed: 7,
            n: 100,
            m: 250,
            workloads: vec![WorkloadRecord {
                name: "floodmax".into(),
                rounds: 9,
                messages: 1234,
                bits: 9999,
                peak_edge_bits: 16,
                engines: vec![
                    EngineTiming {
                        engine: "sequential".into(),
                        threads: 1,
                        wall_ms: 10.5,
                    },
                    EngineTiming {
                        engine: "parallel".into(),
                        threads: 4,
                        wall_ms: 4.2,
                    },
                ],
                speedup: 2.5,
                identical: true,
            }],
        }
    }

    #[test]
    fn json_contains_schema_fields() {
        let j = sample().to_json();
        for needle in [
            "\"bench\": \"sim_round_engine\"",
            "\"n\": 100",
            "\"m\": 250",
            "\"rounds\": 9",
            "\"peak_edge_bits\": 16",
            "\"engine\": \"parallel\", \"threads\": 4",
            "\"speedup\": 2.500",
            "\"identical\": true",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn json_is_balanced() {
        let j = sample().to_json();
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.matches(open).count(),
                j.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        // No trailing comma before a closer (the classic hand-rolled-JSON
        // bug).
        assert!(!j.contains(",\n  ]"), "trailing comma:\n{j}");
        assert!(!j.contains(",\n    ]"), "trailing comma:\n{j}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn time_ms_measures() {
        let (v, ms) = time_ms(|| (0..10_000u64).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(ms >= 0.0);
    }
}
