//! Reader, validator, and analysis helpers for the kernel's JSONL
//! telemetry traces (the `trace_view` binary is a thin CLI over this
//! module).
//!
//! The `pga-runtime` telemetry plane streams one JSON object per event
//! — `run_start`, `round`, `run_end` — to the path named by `PGA_TRACE`
//! (see `pga_runtime::probe::JsonlProbe` for the schema). This module
//! parses those lines back with a purposely small hand-rolled JSON
//! reader (the workspace is offline, so no serde), groups them into
//! [`TraceRun`]s, and provides the summaries `trace_view` renders:
//! top-k hottest rounds, the per-round shard-imbalance timeline,
//! log-bucket histogram percentiles, and a chrome://tracing export.

use pga_congest::SizeHist;

/// A parsed JSON value — just enough of the grammar for the trace
/// schema (unsigned integers only; the probe never emits floats,
/// negatives, booleans, or nulls).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// An unsigned integer.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} (found {:?})",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {} (the trace schema has only objects, \
                 arrays, strings, and unsigned integers)",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {} (found {:?})",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {} (found {:?})",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(format!(
                "non-integer number at byte {start} (the trace schema emits unsigned integers only)"
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("number out of u64 range at byte {start}"))
    }
}

/// Parses one JSON document (used per trace line).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// One shard's record within a [`TraceRound`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceShard {
    /// Shard index.
    pub shard: usize,
    /// Step-phase wall time on the shard's worker thread, ns.
    pub wall_ns: u64,
    /// Messages the shard's actors sent.
    pub messages: u64,
    /// Charged volume the shard's actors sent.
    pub volume: u64,
}

/// The fault-delta object of a `round` (or residual `run_end`) event,
/// omitted from the JSONL when all zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceFault {
    /// Messages dropped this round.
    pub dropped: u64,
    /// Messages duplicated this round.
    pub duplicated: u64,
    /// Messages delayed this round.
    pub delayed: u64,
    /// Actors crashed this round.
    pub crashed: u64,
    /// Data frames retransmitted by the reliable executor this round
    /// (0 on raw-path traces, which omit the whole ARQ trio).
    pub retransmitted: u64,
    /// Cumulative ack frames the reliable executor transmitted this
    /// round.
    pub acks: u64,
    /// Links declared dead this round (retry-budget exhaustion or a
    /// crash-induced sever).
    pub dead_links: u64,
}

/// One `round` event of a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceRound {
    /// 0-based round index.
    pub round: usize,
    /// Round wall time on the driving thread, ns.
    pub wall_ns: u64,
    /// Messages charged this round.
    pub messages: u64,
    /// Charged volume this round.
    pub volume: u64,
    /// Largest single-message charge this round.
    pub peak_link: u64,
    /// Actors stepped this round.
    pub active: u64,
    /// Exchange-phase wall time, ns.
    pub exchange_ns: u64,
    /// Delay-queue depth after the exchange (fault runs only).
    pub delay_depth: u64,
    /// Per-shard records, strictly ascending shard index.
    pub shards: Vec<TraceShard>,
    /// Non-empty size-histogram buckets as `(bucket, count)` pairs.
    pub sizes: Vec<(usize, u64)>,
    /// Fault delta, when the round had fault events.
    pub fault: Option<TraceFault>,
}

impl TraceRound {
    /// The round's shard imbalance: `max/mean - 1` over per-shard wall
    /// times (falling back to message counts when the wall times are
    /// all zero), or 0.0 with fewer than two shard records — the same
    /// definition as `pga_runtime::RoundTelemetry::shard_imbalance`.
    pub fn shard_imbalance(&self) -> f64 {
        if self.shards.len() < 2 {
            return 0.0;
        }
        let walls: Vec<u64> = self.shards.iter().map(|s| s.wall_ns).collect();
        let vals = if walls.iter().any(|&w| w > 0) {
            walls
        } else {
            self.shards.iter().map(|s| s.messages).collect()
        };
        let max = *vals.iter().max().unwrap() as f64;
        let mean = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean - 1.0
        }
    }

    /// This round's size histogram, rehydrated into a [`SizeHist`].
    pub fn size_hist(&self) -> SizeHist {
        let mut h = SizeHist::default();
        for &(k, c) in &self.sizes {
            h.buckets[k] += c;
        }
        h
    }
}

/// One run of a trace file: a `run_start` event, its rounds, and (for
/// completed runs) the `run_end` record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceRun {
    /// The emitting model family (`"congest"`, `"mpc"`, …).
    pub label: String,
    /// Actors in the run.
    pub actors: u64,
    /// Shard count of the partition.
    pub shards: u64,
    /// Shard boundary offsets.
    pub bounds: Vec<u64>,
    /// Round records in execution order.
    pub rounds: Vec<TraceRound>,
    /// `(rounds, wall_ns)` of the `run_end` event; `None` when the run
    /// aborted with a model error before completing.
    pub end: Option<(u64, u64)>,
    /// The residual fault delta of the `run_end` record (crashes
    /// activated by the final quiescence check, or the reliable
    /// executor's trailing ack drain), when it carried one.
    pub end_fault: Option<TraceFault>,
}

impl TraceRun {
    /// Whole-run wall time: the `run_end` record when present, else the
    /// sum of the recorded round wall times.
    pub fn total_wall_ns(&self) -> u64 {
        self.end
            .map(|(_, ns)| ns)
            .unwrap_or_else(|| self.rounds.iter().map(|r| r.wall_ns).sum())
    }

    /// Whole-run size histogram (all rounds merged).
    pub fn size_hist(&self) -> SizeHist {
        let mut h = SizeHist::default();
        for r in &self.rounds {
            h.merge(&r.size_hist());
        }
        h
    }

    /// The `k` hottest rounds by wall time, hottest first (ties broken
    /// by round index for determinism).
    pub fn hottest(&self, k: usize) -> Vec<&TraceRound> {
        let mut by_wall: Vec<&TraceRound> = self.rounds.iter().collect();
        by_wall.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.round.cmp(&b.round)));
        by_wall.truncate(k);
        by_wall
    }

    /// Every fault delta of the run, in order: each round's (when
    /// present), then the `run_end` residual (when present).
    pub fn fault_deltas(&self) -> impl Iterator<Item = &TraceFault> {
        self.rounds
            .iter()
            .filter_map(|r| r.fault.as_ref())
            .chain(self.end_fault.as_ref())
    }

    /// Total faults recorded across all rounds and the `run_end`
    /// residual (dropped + duplicated + delayed + crashed).
    pub fn total_faults(&self) -> u64 {
        self.fault_deltas()
            .map(|f| f.dropped + f.duplicated + f.delayed + f.crashed)
            .sum()
    }

    /// `(retransmitted, acks, dead_links)` totals over the whole run —
    /// all zero on raw-path traces, which never emit the ARQ trio.
    pub fn arq_totals(&self) -> (u64, u64, u64) {
        self.fault_deltas().fold((0, 0, 0), |(r, a, d), f| {
            (r + f.retransmitted, a + f.acks, d + f.dead_links)
        })
    }
}

/// One event of a trace line, in schema terms.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A `run_start` line.
    RunStart {
        /// Emitting model family.
        label: String,
        /// Actors in the run.
        actors: u64,
        /// Shard count.
        shards: u64,
        /// Shard boundary offsets.
        bounds: Vec<u64>,
    },
    /// A `round` line.
    Round(TraceRound),
    /// A `run_end` line.
    RunEnd {
        /// Rounds the run executed.
        rounds: u64,
        /// Whole-run wall time, ns.
        wall_ns: u64,
        /// Residual fault delta (crashes from the final quiescence
        /// check, the reliable executor's trailing ack drain).
        fault: Option<TraceFault>,
    },
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .ok_or_else(|| format!("missing field \"{key}\""))?
        .as_u64()
        .ok_or_else(|| format!("field \"{key}\" is not an unsigned integer"))
}

/// Parses a fault-delta object. The base quartet is required; the ARQ
/// trio (`retransmitted`/`acks`/`dead_links`) is optional but
/// all-or-none — the reliable executor always emits the three together,
/// so a partial trio means a malformed (hand-edited or truncated) line.
fn parse_fault(fault: &Json) -> Result<TraceFault, String> {
    let trio = ["retransmitted", "acks", "dead_links"];
    let present = trio.iter().filter(|k| fault.get(k).is_some()).count();
    if present != 0 && present != trio.len() {
        return Err(
            "fault object carries a partial ARQ trio (retransmitted/acks/dead_links \
             must appear together or not at all)"
                .into(),
        );
    }
    let arq = present == trio.len();
    Ok(TraceFault {
        dropped: req_u64(fault, "dropped")?,
        duplicated: req_u64(fault, "duplicated")?,
        delayed: req_u64(fault, "delayed")?,
        crashed: req_u64(fault, "crashed")?,
        retransmitted: if arq {
            req_u64(fault, "retransmitted")?
        } else {
            0
        },
        acks: if arq { req_u64(fault, "acks")? } else { 0 },
        dead_links: if arq {
            req_u64(fault, "dead_links")?
        } else {
            0
        },
    })
}

/// Parses and validates one trace line against the JSONL schema.
///
/// Unknown fields are tolerated (the schema may grow), missing or
/// mistyped required fields are not.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let v = parse_json(line)?;
    let event = v
        .get("event")
        .and_then(Json::as_str)
        .ok_or("missing string field \"event\"")?;
    match event {
        "run_start" => {
            let label = v
                .get("label")
                .and_then(Json::as_str)
                .ok_or("missing string field \"label\"")?
                .to_string();
            let actors = req_u64(&v, "actors")?;
            let shards = req_u64(&v, "shards")?;
            let bounds: Vec<u64> = v
                .get("bounds")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"bounds\"")?
                .iter()
                .map(|b| b.as_u64().ok_or("non-integer bound"))
                .collect::<Result<_, _>>()?;
            if bounds.len() as u64 != shards + 1 {
                return Err(format!(
                    "bounds has {} offsets for {} shards (want shards + 1)",
                    bounds.len(),
                    shards
                ));
            }
            if bounds.first() != Some(&0) || bounds.last() != Some(&actors) {
                return Err("bounds must start at 0 and end at actors".into());
            }
            if bounds.windows(2).any(|w| w[0] > w[1]) {
                return Err("bounds must be non-decreasing".into());
            }
            Ok(TraceEvent::RunStart {
                label,
                actors,
                shards,
                bounds,
            })
        }
        "round" => {
            let mut r = TraceRound {
                round: req_u64(&v, "round")? as usize,
                wall_ns: req_u64(&v, "wall_ns")?,
                messages: req_u64(&v, "messages")?,
                volume: req_u64(&v, "volume")?,
                peak_link: req_u64(&v, "peak_link")?,
                active: req_u64(&v, "active")?,
                exchange_ns: req_u64(&v, "exchange_ns")?,
                delay_depth: req_u64(&v, "delay_depth")?,
                ..TraceRound::default()
            };
            if let Some(shards) = v.get("shards") {
                let items = shards.as_arr().ok_or("field \"shards\" is not an array")?;
                for item in items {
                    let sh = TraceShard {
                        shard: req_u64(item, "shard")? as usize,
                        wall_ns: req_u64(item, "wall_ns")?,
                        messages: req_u64(item, "messages")?,
                        volume: req_u64(item, "volume")?,
                    };
                    if let Some(prev) = r.shards.last() {
                        if sh.shard <= prev.shard {
                            return Err(format!(
                                "shard indices must be strictly ascending ({} after {})",
                                sh.shard, prev.shard
                            ));
                        }
                    }
                    r.shards.push(sh);
                }
            }
            if let Some(sizes) = v.get("sizes") {
                let items = sizes.as_arr().ok_or("field \"sizes\" is not an array")?;
                for item in items {
                    let pair = item.as_arr().ok_or("size entry is not a pair")?;
                    let (k, c) = match pair {
                        [k, c] => (
                            k.as_u64().ok_or("non-integer size bucket")?,
                            c.as_u64().ok_or("non-integer size count")?,
                        ),
                        _ => return Err("size entry is not a [bucket, count] pair".into()),
                    };
                    if k >= 64 {
                        return Err(format!("size bucket {k} out of range (0..64)"));
                    }
                    if c == 0 {
                        return Err("size entry with zero count".into());
                    }
                    r.sizes.push((k as usize, c));
                }
            }
            if let Some(fault) = v.get("fault") {
                r.fault = Some(parse_fault(fault)?);
            }
            Ok(TraceEvent::Round(r))
        }
        "run_end" => Ok(TraceEvent::RunEnd {
            rounds: req_u64(&v, "rounds")?,
            wall_ns: req_u64(&v, "wall_ns")?,
            fault: v.get("fault").map(parse_fault).transpose()?,
        }),
        other => Err(format!("unknown event type \"{other}\"")),
    }
}

/// Parses a whole trace file into runs. Blank lines are skipped; every
/// other line must validate ([`parse_line`]). Round and `run_end`
/// events must follow a `run_start`; a new `run_start` before the
/// previous run's `run_end` closes that run as aborted (`end: None`) —
/// exactly what the probe emits when a run dies on a model error.
///
/// # Errors
///
/// Returns `(1-based line number, description)` of the first invalid
/// line or sequencing violation.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRun>, (usize, String)> {
    let mut runs: Vec<TraceRun> = Vec::new();
    let mut open = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        match parse_line(line).map_err(|e| (lineno, e))? {
            TraceEvent::RunStart {
                label,
                actors,
                shards,
                bounds,
            } => {
                runs.push(TraceRun {
                    label,
                    actors,
                    shards,
                    bounds,
                    ..TraceRun::default()
                });
                open = true;
            }
            TraceEvent::Round(r) => {
                if !open {
                    return Err((lineno, "round event outside a run".into()));
                }
                let run = runs.last_mut().unwrap();
                if let Some(prev) = run.rounds.last() {
                    if r.round != prev.round + 1 {
                        return Err((
                            lineno,
                            format!("round {} after round {}", r.round, prev.round),
                        ));
                    }
                }
                run.rounds.push(r);
            }
            TraceEvent::RunEnd {
                rounds,
                wall_ns,
                fault,
            } => {
                if !open {
                    return Err((lineno, "run_end event outside a run".into()));
                }
                let run = runs.last_mut().unwrap();
                run.end = Some((rounds, wall_ns));
                run.end_fault = fault;
                open = false;
            }
        }
    }
    Ok(runs)
}

fn push_event(out: &mut String, fields: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push('\n');
    out.push_str("  {");
    out.push_str(fields);
    out.push('}');
}

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// Renders `runs` as a chrome://tracing (and Perfetto) compatible JSON
/// document of complete (`"ph":"X"`) events: rounds and exchanges on
/// track 0 of each run's process, shard step phases on tracks `1 + s`.
/// Timestamps are synthesized by laying the rounds end to end (the
/// trace records durations, not absolute times).
pub fn chrome_trace(runs: &[TraceRun]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (ri, run) in runs.iter().enumerate() {
        let pid = ri + 1;
        push_event(
            &mut out,
            &format!(
                "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{} run {} ({} actors, {} shards)\"}}",
                pid, run.label, pid, run.actors, run.shards
            ),
        );
        let mut t = 0u64;
        for r in &run.rounds {
            push_event(
                &mut out,
                &format!(
                    "\"name\":\"round {}\",\"cat\":\"round\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":0,\"args\":{{\"messages\":{},\"volume\":{},\"active\":{}}}",
                    r.round,
                    us(t),
                    us(r.wall_ns),
                    pid,
                    r.messages,
                    r.volume,
                    r.active
                ),
            );
            for sh in &r.shards {
                push_event(
                    &mut out,
                    &format!(
                        "\"name\":\"shard {}\",\"cat\":\"shard\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":{},\"tid\":{},\"args\":{{\"messages\":{},\"volume\":{}}}",
                        sh.shard,
                        us(t),
                        us(sh.wall_ns),
                        pid,
                        1 + sh.shard,
                        sh.messages,
                        sh.volume
                    ),
                );
            }
            if r.exchange_ns > 0 {
                push_event(
                    &mut out,
                    &format!(
                        "\"name\":\"exchange\",\"cat\":\"exchange\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":{},\"tid\":0",
                        us(t + r.wall_ns.saturating_sub(r.exchange_ns)),
                        us(r.exchange_ns),
                        pid
                    ),
                );
            }
            t += r.wall_ns.max(1);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"event\":\"run_start\",\"label\":\"congest\",\"actors\":8,\"shards\":2,\"bounds\":[0,4,8]}\n",
        "{\"event\":\"round\",\"round\":0,\"wall_ns\":100,\"messages\":6,\"volume\":60,\
         \"peak_link\":16,\"active\":8,\"exchange_ns\":10,\"delay_depth\":0,\
         \"shards\":[{\"shard\":0,\"wall_ns\":40,\"messages\":3,\"volume\":30},\
         {\"shard\":1,\"wall_ns\":20,\"messages\":3,\"volume\":30}],\"sizes\":[[4,6]]}\n",
        "{\"event\":\"round\",\"round\":1,\"wall_ns\":50,\"messages\":0,\"volume\":0,\
         \"peak_link\":0,\"active\":2,\"exchange_ns\":5,\"delay_depth\":1,\
         \"fault\":{\"dropped\":2,\"duplicated\":0,\"delayed\":1,\"crashed\":0}}\n",
        "{\"event\":\"run_end\",\"rounds\":2,\"wall_ns\":200}\n",
    );

    #[test]
    fn parses_and_groups_sample_trace() {
        let runs = parse_trace(SAMPLE).unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.label, "congest");
        assert_eq!(run.bounds, vec![0, 4, 8]);
        assert_eq!(run.rounds.len(), 2);
        assert_eq!(run.end, Some((2, 200)));
        assert_eq!(run.total_wall_ns(), 200);
        // Shard walls 40 vs 20: max 40 / mean 30 - 1 = 1/3.
        assert!((run.rounds[0].shard_imbalance() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(run.size_hist().count(), 6);
        assert_eq!(run.size_hist().percentile(50.0), 31);
        assert_eq!(run.total_faults(), 3);
        let hot = run.hottest(1);
        assert_eq!(hot[0].round, 0);
    }

    #[test]
    fn aborted_run_has_no_end() {
        let text = concat!(
            "{\"event\":\"run_start\",\"label\":\"congest\",\"actors\":2,\"shards\":1,\"bounds\":[0,2]}\n",
            "{\"event\":\"run_start\",\"label\":\"mpc\",\"actors\":2,\"shards\":1,\"bounds\":[0,2]}\n",
            "{\"event\":\"run_end\",\"rounds\":0,\"wall_ns\":5}\n",
        );
        let runs = parse_trace(text).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].end, None);
        assert_eq!(runs[1].end, Some((0, 5)));
    }

    #[test]
    fn rejects_schema_violations() {
        // Not JSON at all.
        assert!(parse_line("nope").is_err());
        // Wrong event.
        assert!(parse_line("{\"event\":\"bogus\"}").is_err());
        // Missing required field.
        assert!(parse_line("{\"event\":\"run_end\",\"rounds\":1}").is_err());
        // Bad bounds arity.
        assert!(parse_line(
            "{\"event\":\"run_start\",\"label\":\"x\",\"actors\":4,\"shards\":2,\"bounds\":[0,4]}"
        )
        .is_err());
        // Floats are not in the schema.
        assert!(parse_line("{\"event\":\"run_end\",\"rounds\":1,\"wall_ns\":1.5}").is_err());
        // Shard order must ascend.
        let bad = "{\"event\":\"round\",\"round\":0,\"wall_ns\":1,\"messages\":0,\"volume\":0,\
                   \"peak_link\":0,\"active\":0,\"exchange_ns\":0,\"delay_depth\":0,\
                   \"shards\":[{\"shard\":1,\"wall_ns\":1,\"messages\":0,\"volume\":0},\
                   {\"shard\":0,\"wall_ns\":1,\"messages\":0,\"volume\":0}]}";
        assert!(parse_line(bad).is_err());
        // Sequencing: a round outside a run names its line.
        let err = parse_trace(
            "{\"event\":\"round\",\"round\":0,\"wall_ns\":1,\"messages\":0,\"volume\":0,\
             \"peak_link\":0,\"active\":0,\"exchange_ns\":0,\"delay_depth\":0}",
        )
        .unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn tolerates_unknown_fields() {
        let line = "{\"event\":\"run_end\",\"rounds\":1,\"wall_ns\":5,\"future_field\":7}";
        assert_eq!(
            parse_line(line).unwrap(),
            TraceEvent::RunEnd {
                rounds: 1,
                wall_ns: 5,
                fault: None
            }
        );
    }

    #[test]
    fn parses_arq_fault_trio() {
        // A reliable-executor trace: the fault objects carry the ARQ
        // trio, on round events and on the run_end residual alike.
        let text = concat!(
            "{\"event\":\"run_start\",\"label\":\"congest\",\"actors\":4,\"shards\":1,\"bounds\":[0,4]}\n",
            "{\"event\":\"round\",\"round\":0,\"wall_ns\":10,\"messages\":4,\"volume\":40,\
             \"peak_link\":10,\"active\":4,\"exchange_ns\":1,\"delay_depth\":0,\
             \"fault\":{\"dropped\":2,\"duplicated\":0,\"delayed\":0,\"crashed\":0,\
             \"retransmitted\":2,\"acks\":3,\"dead_links\":0}}\n",
            "{\"event\":\"round\",\"round\":1,\"wall_ns\":10,\"messages\":2,\"volume\":20,\
             \"peak_link\":10,\"active\":4,\"exchange_ns\":1,\"delay_depth\":0,\
             \"fault\":{\"dropped\":1,\"duplicated\":0,\"delayed\":0,\"crashed\":0,\
             \"retransmitted\":1,\"acks\":2,\"dead_links\":1}}\n",
            "{\"event\":\"run_end\",\"rounds\":2,\"wall_ns\":30,\
             \"fault\":{\"dropped\":0,\"duplicated\":0,\"delayed\":0,\"crashed\":1,\
             \"retransmitted\":0,\"acks\":1,\"dead_links\":0}}\n",
        );
        let runs = parse_trace(text).unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.rounds[0].fault.unwrap().retransmitted, 2);
        assert_eq!(run.end_fault.unwrap().crashed, 1);
        assert_eq!(run.arq_totals(), (3, 6, 1));
        // Base quartet total includes the run_end residual crash.
        assert_eq!(run.total_faults(), 4);
    }

    #[test]
    fn rejects_partial_arq_trio() {
        let line = "{\"event\":\"round\",\"round\":0,\"wall_ns\":1,\"messages\":0,\"volume\":0,\
                    \"peak_link\":0,\"active\":0,\"exchange_ns\":0,\"delay_depth\":0,\
                    \"fault\":{\"dropped\":1,\"duplicated\":0,\"delayed\":0,\"crashed\":0,\
                    \"retransmitted\":1}}";
        let err = parse_line(line).unwrap_err();
        assert!(err.contains("partial ARQ trio"), "got: {err}");
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let runs = parse_trace(SAMPLE).unwrap();
        let doc = chrome_trace(&runs);
        assert!(doc.contains("\"name\":\"round 0\""));
        assert!(doc.contains("\"name\":\"shard 1\""));
        assert!(doc.contains("\"name\":\"exchange\""));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                doc.matches(open).count(),
                doc.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        // Quotes must pair up too (chrome timestamps are fractional
        // microseconds, so the trace-schema parser does not apply here).
        assert_eq!(doc.matches('"').count() % 2, 0);
    }
}
