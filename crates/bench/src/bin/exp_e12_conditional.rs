//! E12 — Theorem 26 / Corollary 27: the conditional-hardness reduction,
//! quantitatively.
//!
//! The reduction runs a `(1+ε)`-approximation for `G²`-MVC on the
//! dangling-path graph `H` with `ε = δ·n^β/(3m)` and recovers a
//! `(1+δ)`-approximation for MVC on `G`. The load-bearing identity is
//! `OPT(H²) = OPT(G) + 2m`; this experiment verifies it and then *runs*
//! the reduction end to end with the Theorem-1 algorithm playing ALG.

use pga_bench::exp_cfg;
use pga_bench::{banner, f3, Table};
use pga_core::mvc::congest::{g2_mvc_congest_cfg, LocalSolver};
use pga_exact::vc::mvc_size;
use pga_graph::cover::{is_vertex_cover, set_size};
use pga_graph::generators;
use pga_graph::power::square;
use pga_lowerbounds::centralized::dangling_path_reduction;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E12: Theorem 26 — the OPT(H²) = OPT(G) + 2m identity and the recovery");
    let t = Table::new(&[
        "n",
        "m",
        "OPT(G)",
        "OPT(H2)",
        "ALG(H2)",
        "recovered",
        "ratio on G",
        "1+delta",
    ]);

    let delta = 0.5;
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::connected_gnp(10, 0.3, &mut rng);
        let m = g.num_edges();
        let opt_g = mvc_size(&g);
        let h = dangling_path_reduction(&g);
        let opt_h2 = mvc_size(&square(&h));
        assert_eq!(opt_h2, opt_g + 2 * m);

        // Run ALG = Theorem 1 on H with the reduction's ε (clamped into
        // the algorithm's domain).
        let eps = (delta * opt_g as f64 / (3.0 * m as f64)).clamp(0.05, 0.99);
        let alg = g2_mvc_congest_cfg(&h, eps, LocalSolver::Exact, &exp_cfg()).expect("simulation");

        // Recover: original (non-gadget) vertices of the H²-cover form a
        // cover of G (Theorem 26's claim C).
        let n = g.num_nodes();
        let recovered: Vec<bool> = alg.cover[..n].to_vec();
        assert!(is_vertex_cover(&g, &recovered), "claim C of Theorem 26");
        let ratio = set_size(&recovered) as f64 / opt_g.max(1) as f64;

        t.row(&[
            n.to_string(),
            m.to_string(),
            opt_g.to_string(),
            opt_h2.to_string(),
            alg.size().to_string(),
            set_size(&recovered).to_string(),
            f3(ratio),
            f3(1.0 + delta),
        ]);
        assert!(
            ratio <= 1.0 + delta + 1e-9,
            "recovered cover must be (1+δ)-approximate"
        );
    }

    println!("\nreading (Cor 27): an o(√n/ε)-round (1+ε) algorithm for G²-MVC would give");
    println!("an o(n²)-round constant-approximation for G-MVC — a major open problem —");
    println!("so the paper's O(n/ε) upper bound cannot be improved below √n/ε easily.");
}
