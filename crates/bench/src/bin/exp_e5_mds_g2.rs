//! E5 — Theorem 28: `O(log Δ)`-approximate `G²`-MDS in polylog CONGEST
//! rounds.
//!
//! Compares the distributed algorithm against the centralized CD18 run
//! on a precomputed square (the estimation-free idealization), the greedy
//! `ln Δ` baseline, and the exact optimum; reports rounds against the
//! polylog budget.

use pga_bench::exp_cfg;
use pga_bench::{banner, f3, Table};
use pga_core::mds::cd18::cd18_mds;
use pga_core::mds::congest_g2::g2_mds_congest_cfg;
use pga_exact::greedy::greedy_mds;
use pga_exact::mds::mds_size;
use pga_graph::cover::{is_dominating_set, is_dominating_set_on_square, set_size};
use pga_graph::generators;
use pga_graph::power::square;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E5: Theorem 28 — G²-MDS, distributed vs baselines");
    let t = Table::new(&[
        "family",
        "n",
        "opt",
        "thm28",
        "cd18-ideal",
        "greedy",
        "rounds",
        "r/log^3 n",
    ]);

    let mut rng = StdRng::seed_from_u64(28);
    let cases = vec![
        ("star".to_string(), generators::star(40)),
        ("path".to_string(), generators::path(40)),
        ("grid".to_string(), generators::grid(6, 6)),
        (
            "gnp(40,.08)".to_string(),
            generators::connected_gnp(40, 0.08, &mut rng),
        ),
        (
            "pref-att(40)".to_string(),
            generators::preferential_attachment(40, 2, &mut rng),
        ),
    ];

    for (name, g) in &cases {
        let n = g.num_nodes();
        let g2 = square(g);
        let opt = mds_size(&g2);

        let dist = g2_mds_congest_cfg(g, 8, 5, &exp_cfg()).expect("simulation");
        assert!(is_dominating_set_on_square(g, &dist.dominating_set));

        let ideal = cd18_mds(&g2, 5);
        assert!(is_dominating_set(&g2, &ideal.dominating_set));

        let greedy = greedy_mds(&g2);
        let logn = (n as f64).log2();
        t.row(&[
            name.clone(),
            n.to_string(),
            opt.to_string(),
            dist.size().to_string(),
            set_size(&ideal.dominating_set).to_string(),
            set_size(&greedy).to_string(),
            dist.metrics.rounds.to_string(),
            f3(dist.metrics.rounds as f64 / logn.powi(3)),
        ]);
    }

    banner("E5b: approximation factor vs the O(log Δ) guarantee (random sweep)");
    let t = Table::new(&["seed", "delta(G2)", "opt", "thm28", "ratio", "8*H(delta)"]);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let g = generators::connected_gnp(30, 0.1, &mut rng);
        let g2 = square(&g);
        let opt = mds_size(&g2).max(1);
        let dist = g2_mds_congest_cfg(&g, 8, seed, &exp_cfg()).expect("simulation");
        let delta = g2.max_degree().max(2) as f64;
        t.row(&[
            seed.to_string(),
            (delta as usize).to_string(),
            opt.to_string(),
            dist.size().to_string(),
            f3(dist.size() as f64 / opt as f64),
            f3(8.0 * (delta.ln() + 1.0)),
        ]);
    }

    println!("\nshape check: thm28 tracks cd18-ideal (estimation costs little quality),");
    println!("both within O(log Δ) of opt; rounds stay polylogarithmic in n.");
}
