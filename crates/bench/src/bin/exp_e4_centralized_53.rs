//! E4 — Theorem 12: the centralized 5/3-approximation for `G²`-MVC.
//!
//! Measures the realized approximation ratio against the exact optimum
//! across graph families, with the per-part accounting (`s₁, s₂, s₃`) the
//! proof of Theorem 12 amortizes over. Contrast column: the best
//! poly-time factor on general graphs is 2 (UGC-hard to beat).

use pga_bench::{banner, f3, Table};
use pga_core::mvc::centralized::five_thirds_vertex_cover;
use pga_exact::vc::mvc_size;
use pga_graph::cover::is_vertex_cover;
use pga_graph::matching::two_approx_vertex_cover;
use pga_graph::power::square;
use pga_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E4: Theorem 12 — 5/3-approximation on squares vs exact and 2-approx");
    let t = Table::new(&[
        "family",
        "n",
        "opt",
        "5/3 size",
        "ratio",
        "s1",
        "s2",
        "s3",
        "2apx size",
        "2apx ratio",
    ]);

    let mut rng = StdRng::seed_from_u64(12);
    let families: Vec<(String, Graph)> = vec![
        ("path".into(), generators::path(40)),
        ("cycle".into(), generators::cycle(40)),
        ("star".into(), generators::star(30)),
        ("caterpillar".into(), generators::caterpillar(10, 3)),
        ("clique-chain".into(), generators::clique_chain(5, 5)),
        ("grid".into(), generators::grid(5, 6)),
        (
            "gnp(35,.1)".into(),
            generators::connected_gnp(35, 0.1, &mut rng),
        ),
        (
            "gnp(35,.2)".into(),
            generators::connected_gnp(35, 0.2, &mut rng),
        ),
        (
            "pref-att".into(),
            generators::preferential_attachment(35, 2, &mut rng),
        ),
    ];

    let mut worst: f64 = 1.0;
    for (name, g) in &families {
        let g2 = square(g);
        let opt = mvc_size(&g2);
        let r = five_thirds_vertex_cover(&g2);
        assert!(is_vertex_cover(&g2, &r.cover));
        let two = two_approx_vertex_cover(&g2);
        let two_size = two.iter().filter(|&&b| b).count();
        let ratio = r.size() as f64 / opt.max(1) as f64;
        worst = worst.max(ratio);
        t.row(&[
            name.clone(),
            g.num_nodes().to_string(),
            opt.to_string(),
            r.size().to_string(),
            f3(ratio),
            r.part1.len().to_string(),
            r.part2.len().to_string(),
            r.part3.len().to_string(),
            two_size.to_string(),
            f3(two_size as f64 / opt.max(1) as f64),
        ]);
    }

    banner("E4b: adversarial sweep — 60 random squares, worst ratio observed");
    let mut rng = StdRng::seed_from_u64(13);
    let mut sweep_worst: f64 = 1.0;
    for _ in 0..60 {
        let g = generators::gnp(16, 0.18, &mut rng);
        let g2 = square(&g);
        let opt = mvc_size(&g2);
        if opt == 0 {
            continue;
        }
        let r = five_thirds_vertex_cover(&g2);
        sweep_worst = sweep_worst.max(r.size() as f64 / opt as f64);
    }
    println!("worst ratio over families: {}", f3(worst));
    println!(
        "worst ratio over sweep:    {} (bound: {} = 5/3)",
        f3(sweep_worst),
        f3(5.0 / 3.0)
    );
    assert!(worst <= 5.0 / 3.0 + 1e-9 && sweep_worst <= 5.0 / 3.0 + 1e-9);
}
