//! E13 — Lemma 25: small-cut families cannot lower-bound `(1+ε)`-MVC.
//!
//! Runs the two-party protocol (cut vertices + per-side optimal covers)
//! on the paper's own Figure-1 families and on engineered small-cut
//! graphs, reporting bits exchanged and the realized approximation ratio
//! — which collapses toward 1 as `n` grows while the cut stays small.

use pga_bench::{banner, f3, Table};
use pga_exact::vc::mvc_size;
use pga_graph::power::square;
use pga_graph::{generators, GraphBuilder, NodeId};
use pga_lowerbounds::ckp17;
use pga_lowerbounds::disjointness::{DisjInstance, PartitionedGraph};
use pga_lowerbounds::limitations::{ratio_bound, two_party_protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two dense blobs of size `s` joined by `links` edges.
fn barbell(s: usize, links: usize) -> PartitionedGraph {
    let a = generators::complete(s);
    let bgraph = generators::complete(s);
    let u = generators::disjoint_union(&a, &bgraph);
    let mut b = GraphBuilder::new(2 * s);
    for (x, y) in u.edges() {
        b.add_edge(x, y);
    }
    for i in 0..links {
        b.add_edge(NodeId::from_index(i), NodeId::from_index(s + i));
    }
    PartitionedGraph {
        graph: b.build(),
        alice: (0..2 * s).map(|i| i < s).collect(),
    }
}

fn main() {
    banner("E13: Lemma 25 — the two-party protocol on small-cut families");
    let t = Table::new(&[
        "family",
        "n",
        "cut",
        "bits",
        "proto",
        "opt",
        "ratio",
        "Lem25 bound",
    ]);

    for &s in &[8usize, 12, 16] {
        let pg = barbell(s, 1);
        let out = two_party_protocol(&pg);
        let opt = mvc_size(&square(&pg.graph));
        t.row(&[
            format!("barbell({s})"),
            (2 * s).to_string(),
            pg.cut_size().to_string(),
            out.bits_exchanged.to_string(),
            out.size().to_string(),
            opt.to_string(),
            f3(out.size() as f64 / opt.max(1) as f64),
            f3(ratio_bound(2 * s, out.cut_vertices)),
        ]);
    }

    for &k in &[2usize, 4] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let inst = DisjInstance::random(k, 0.5, &mut rng);
        let fam = ckp17::build(&inst);
        let out = two_party_protocol(&fam.partitioned);
        let opt = mvc_size(&square(fam.graph()));
        t.row(&[
            format!("ckp17(k={k})"),
            fam.graph().num_nodes().to_string(),
            fam.partitioned.cut_size().to_string(),
            out.bits_exchanged.to_string(),
            out.size().to_string(),
            opt.to_string(),
            f3(out.size() as f64 / opt.max(1) as f64),
            f3(ratio_bound(fam.graph().num_nodes(), out.cut_vertices)),
        ]);
    }

    println!("\nreading: with O(log n) bits of communication the players already get a");
    println!("(1 + o(1))-approximation on ANY o(n)-cut family — so Theorem 19 cannot");
    println!("yield super-constant (1+ε)-MVC lower bounds, and the paper's conditional");
    println!("hardness (Theorem 26) is the right tool instead.");
}
