//! E1 — Theorem 1: `(1+ε)`-approximate `G²`-MVC in `O(n/ε)` CONGEST
//! rounds.
//!
//! Sweeps `n` and `ε` over random connected graphs, reporting simulated
//! rounds, the normalized quantity `rounds/(n/ε)` (which should stay
//! bounded — the paper's shape), and the approximation ratio against the
//! exact optimum where feasible, otherwise against the maximal-matching
//! lower bound of the square.

use pga_bench::exp_cfg;
use pga_bench::{banner, f3, square_mvc_lower_bound, Table};
use pga_core::mvc::congest::{g2_mvc_congest_cfg, LocalSolver};
use pga_exact::vc::mvc_size;
use pga_graph::cover::is_vertex_cover_on_square;
use pga_graph::generators;
use pga_graph::power::square;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E1: Theorem 1 — rounds and ratio vs n, ε (connected G(n,p), avg deg ≈ 6)");
    let t = Table::new(&[
        "n",
        "eps",
        "rounds",
        "r/(n/eps)",
        "|S|",
        "|R*|",
        "cover",
        "opt/LB",
        "ratio<=",
        "1+eps",
    ]);

    for &n in &[50usize, 100, 200, 400] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::connected_gnp(n, 6.0 / n as f64, &mut rng);
        // Exact optimum is feasible only at small n; otherwise use the
        // matching lower bound (ratio column is then an upper bound).
        let reference = if n <= 100 {
            mvc_size(&square(&g))
        } else {
            square_mvc_lower_bound(&g)
        };
        for &eps in &[1.0f64, 0.5, 0.25, 0.125] {
            let solver = if n <= 100 {
                LocalSolver::Exact
            } else {
                LocalSolver::FiveThirds
            };
            let r = g2_mvc_congest_cfg(&g, eps, solver, &exp_cfg()).expect("simulation");
            assert!(is_vertex_cover_on_square(&g, &r.cover));
            let rounds = r.total_rounds();
            t.row(&[
                n.to_string(),
                format!("{eps}"),
                rounds.to_string(),
                f3(rounds as f64 / (n as f64 / eps)),
                r.s_size.to_string(),
                r.r_star_size.to_string(),
                r.size().to_string(),
                reference.to_string(),
                f3(r.size() as f64 / reference.max(1) as f64),
                f3(1.0 + eps),
            ]);
        }
    }

    banner("E1b: same sweep on cycles (worst case for Phase I: nothing to harvest)");
    let t = Table::new(&[
        "n",
        "eps",
        "rounds",
        "r/(n/eps)",
        "cover",
        "opt/LB",
        "ratio<=",
    ]);
    for &n in &[50usize, 100, 200] {
        let g = generators::cycle(n);
        let reference = square_mvc_lower_bound(&g);
        for &eps in &[0.5f64, 0.25] {
            let r = g2_mvc_congest_cfg(&g, eps, LocalSolver::FiveThirds, &exp_cfg())
                .expect("simulation");
            assert!(is_vertex_cover_on_square(&g, &r.cover));
            t.row(&[
                n.to_string(),
                format!("{eps}"),
                r.total_rounds().to_string(),
                f3(r.total_rounds() as f64 / (n as f64 / eps)),
                r.size().to_string(),
                reference.to_string(),
                f3(r.size() as f64 / reference.max(1) as f64),
            ]);
        }
    }

    println!("\nshape check: rounds/(n/ε) stays O(1) across the sweep — the paper's O(n/ε);");
    println!("ratio<= is measured against exact OPT for n ≤ 100, else against a lower bound.");
}
