//! E10 — Lemma 6: the zero-round trivial approximation on powers `G^r`.
//!
//! Measures the realized ratio of the all-vertices cover against the
//! exact optimum of `G^r` for growing `r`, confirming the
//! `1 + 1/⌊r/2⌋` bound and its improvement with `r`.

use pga_bench::{banner, f3, Table};
use pga_core::mvc::trivial::{trivial_ratio, vertex_cover_lower_bound};
use pga_exact::vc::mvc_size;
use pga_graph::generators;
use pga_graph::power::power;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E10: Lemma 6 — all-vertices cover on G^r (0 CONGEST rounds)");
    let t = Table::new(&["family", "r", "opt(G^r)", "Lem6 LB", "n/opt", "bound"]);

    let mut rng = StdRng::seed_from_u64(6);
    let cases = vec![
        ("path(24)".to_string(), generators::path(24)),
        ("cycle(24)".to_string(), generators::cycle(24)),
        (
            "gnp(20,.1)".to_string(),
            generators::connected_gnp(20, 0.1, &mut rng),
        ),
        (
            "tree(20)".to_string(),
            generators::random_tree(20, &mut rng),
        ),
    ];

    for (name, g) in &cases {
        let n = g.num_nodes();
        for r in 2..=6usize {
            let gr = power(g, r);
            let opt = mvc_size(&gr);
            if opt == 0 {
                continue;
            }
            let ratio = n as f64 / opt as f64;
            let bound = trivial_ratio(r);
            assert!(ratio <= bound + 1e-9, "{name} r={r}");
            assert!(opt >= vertex_cover_lower_bound(n, r));
            t.row(&[
                name.clone(),
                r.to_string(),
                opt.to_string(),
                vertex_cover_lower_bound(n, r).to_string(),
                f3(ratio),
                f3(bound),
            ]);
        }
    }

    println!("\nshape check: the measured ratio respects 1 + 1/⌊r/2⌋ and tightens as r");
    println!("grows — a 2-approximation at r = 2 free of any communication (Lemma 6).");
}
