//! E9 — Figures 6–7 (Theorems 35, 41): the approximation-gap families.
//!
//! Certifies an `r`-covering set system, verifies Lemma 39 on the
//! standalone set gadget, then verifies the 6-vs-7 (weighted) and 8-vs-9
//! (unweighted) dominating-set gaps on the composed Figure-7 families —
//! the gaps that rule out better-than-7/6 (resp. 9/8) approximations in
//! `Ω̃(n²)` rounds.

use pga_bench::{banner, Table};
use pga_exact::mds::{mwds_weight, solve_mwds_with_budget};
use pga_graph::power::square;
use pga_lowerbounds::disjointness::DisjInstance;
use pga_lowerbounds::mds_approx::{build_unweighted, build_weighted, ApproxConfig};
use pga_lowerbounds::set_gadget::{build_gadget, SetSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E9: certified r-covering set systems (Definition 37 / Lemma 38)");
    let mut rng = StdRng::seed_from_u64(9);
    let t = Table::new(&["r", "T", "universe", "certified"]);
    let mut sys3 = None;
    for (r, ell) in [(2usize, 16usize), (3, 24)] {
        let sys = SetSystem::search(ell, 3, r, 500, &mut rng).expect("system found");
        let ok = sys.check_r_covering(r);
        t.row(&[
            r.to_string(),
            sys.len().to_string(),
            sys.universe.to_string(),
            ok.to_string(),
        ]);
        assert!(ok);
        if r == 3 {
            sys3 = Some(sys);
        }
    }
    let sys3 = sys3.expect("3-covering system");

    banner("E9b: Lemma 39 on the standalone set gadget");
    let gadget = build_gadget(&sys3, 5);
    let g2 = square(&gadget.graph);
    let w = mwds_weight(&g2, &gadget.weights);
    println!(
        "gadget: n = {}, MDS weight of square = {w} (Lemma 39: 2, via a complementary pair)",
        gadget.graph.num_nodes()
    );
    assert_eq!(w, 2);

    banner("E9c: Theorem 35 / 41 gap verification");
    let cfg = ApproxConfig {
        system: sys3,
        heavy: 8,
    };
    let t = Table::new(&["variant", "instance", "DISJ", "n", "low", "fits low", "gap"]);
    for seed in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(90 + seed);
        for (name, inst) in [
            (
                "intersecting",
                DisjInstance::random_intersecting(3, 0.4, &mut rng),
            ),
            ("disjoint", DisjInstance::random_disjoint(3, 0.4, &mut rng)),
        ] {
            for (variant, lb) in [
                ("weighted", build_weighted(&inst, &cfg)),
                ("unweighted", build_unweighted(&inst, &cfg)),
            ] {
                let sq = square(lb.graph());
                let fits = solve_mwds_with_budget(&sq, &lb.weights, lb.low).is_some();
                assert_eq!(fits, !inst.disjoint(), "{variant}/{name}");
                t.row(&[
                    variant.to_string(),
                    name.to_string(),
                    inst.disjoint().to_string(),
                    lb.graph().num_nodes().to_string(),
                    lb.low.to_string(),
                    fits.to_string(),
                    format!("{}/{}", lb.high, lb.low),
                ]);
            }
        }
    }

    println!("\nTheorem 19 reading: distinguishing MDS weight ≤ 6 from ≥ 7 (resp. 8 vs 9)");
    println!("requires Ω̃(n²) rounds ⇒ no o(n²)-round c-approximation for c < 7/6 (< 9/8).");
}
