//! E8 — Figures 4–5 (Theorem 31): the exact-MDS lower-bound family.
//!
//! Structure sweep plus exact verification of the BCD19 predicate and
//! Lemma 34's offset equality.

use pga_bench::{banner, f3, Table};
use pga_exact::mds::{mds_size, solve_mds_with_budget};
use pga_graph::power::square;
use pga_lowerbounds::disjointness::DisjInstance;
use pga_lowerbounds::{bcd19, mds_exact};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E8: structure of the MDS lower-bound families (Figures 4-5)");
    let t = Table::new(&[
        "k",
        "n(G)",
        "cut(G)",
        "n(H)",
        "cut(H)",
        "#gadgets",
        "Thm19 bound",
    ]);
    for &k in &[2usize, 4, 8, 16] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let inst = DisjInstance::random(k, 0.5, &mut rng);
        let g = bcd19::build(&inst);
        let h = mds_exact::build(&inst);
        t.row(&[
            k.to_string(),
            g.graph().num_nodes().to_string(),
            g.partitioned.cut_size().to_string(),
            h.graph().num_nodes().to_string(),
            h.partitioned.cut_size().to_string(),
            h.num_gadgets.to_string(),
            f3(h.partitioned.theorem19_round_bound(k)),
        ]);
    }

    banner("E8b: BCD19 predicate ⇔ DISJ (exact MDS, budget 4·log k + 2)");
    let t = Table::new(&["k", "instance", "DISJ", "G fits"]);
    for &k in &[2usize, 4] {
        let mut rng = StdRng::seed_from_u64(80 + k as u64);
        for (name, inst) in [
            (
                "intersecting",
                DisjInstance::random_intersecting(k, 0.4, &mut rng),
            ),
            ("disjoint", DisjInstance::random_disjoint(k, 0.4, &mut rng)),
        ] {
            let g = bcd19::build(&inst);
            let fits = solve_mds_with_budget(g.graph(), g.ds_budget()).is_some();
            assert_eq!(fits, !inst.disjoint());
            t.row(&[
                k.to_string(),
                name.to_string(),
                inst.disjoint().to_string(),
                fits.to_string(),
            ]);
        }
    }

    banner("E8c: Lemma 34 — MDS(H²) = MDS(G) + #gadgets at k = 2");
    let t = Table::new(&["seed", "MDS(G)", "#gadgets", "MDS(H^2)", "equal"]);
    for seed in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = DisjInstance::random(2, 0.5, &mut rng);
        let g = bcd19::build(&inst);
        let h = mds_exact::build(&inst);
        let lhs = mds_size(&square(h.graph()));
        let rhs = mds_size(g.graph()) + h.num_gadgets;
        t.row(&[
            seed.to_string(),
            mds_size(g.graph()).to_string(),
            h.num_gadgets.to_string(),
            lhs.to_string(),
            (lhs == rhs).to_string(),
        ]);
        assert_eq!(lhs, rhs);
    }

    println!("\nTheorem 19 reading: Ω̃(n²) CONGEST rounds for exact G²-MDS (Thm 31).");
}
