//! E2 — Theorem 7: weighted `(1+ε)`-approximate `G²`-MWVC in
//! `O(n log n / ε)` CONGEST rounds.
//!
//! Sweeps `n`, ε and weight ranges; reports rounds, the normalized
//! quantity `rounds/(n·log n/ε)`, and the ratio against the exact
//! weighted optimum (feasible at these sizes because Phase I thins the
//! remainder).

use pga_bench::exp_cfg;
use pga_bench::{banner, f3, Table};
use pga_core::mvc::weighted::g2_mwvc_congest_cfg;
use pga_exact::wvc::mwvc_weight;
use pga_graph::cover::is_vertex_cover_on_square;
use pga_graph::power::square;
use pga_graph::{generators, VertexWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E2: Theorem 7 — weighted G²-MWVC (connected G(n,p), weights 1..wmax)");
    let t = Table::new(&[
        "n", "wmax", "eps", "rounds", "norm", "S_w", "R*_w", "weight", "opt", "ratio", "1+eps",
    ]);

    for &n in &[30usize, 60, 90] {
        for &wmax in &[8u64, 64] {
            let mut rng = StdRng::seed_from_u64(n as u64 * wmax);
            let g = generators::connected_gnp(n, 6.0 / n as f64, &mut rng);
            let w = VertexWeights::random(n, 1..wmax, &mut rng);
            let opt = mwvc_weight(&square(&g), &w);
            for &eps in &[0.5f64, 0.25] {
                let r = g2_mwvc_congest_cfg(&g, &w, eps, &exp_cfg()).expect("simulation");
                assert!(is_vertex_cover_on_square(&g, &r.cover));
                let rounds = r.total_rounds();
                let norm = rounds as f64 / (n as f64 * (n as f64).log2() / eps);
                t.row(&[
                    n.to_string(),
                    wmax.to_string(),
                    format!("{eps}"),
                    rounds.to_string(),
                    f3(norm),
                    r.s_weight.to_string(),
                    r.r_star_weight.to_string(),
                    r.weight(&w).to_string(),
                    opt.to_string(),
                    f3(r.weight(&w) as f64 / opt.max(1) as f64),
                    f3(1.0 + eps),
                ]);
            }
        }
    }

    banner("E2b: ablation — weight classes matter (exponentially spread weights)");
    let t = Table::new(&["n", "eps", "S_w", "weight", "opt", "ratio"]);
    // With weights 2^i on a star, no class is ever processable; the whole
    // instance falls through to the exact leader solve — still (1+ε), but
    // Phase I contributes nothing. Compare with uniform weights where
    // Phase I harvests everything.
    for (name, weights) in [
        ("2^i", (0..20u64).map(|i| 1 << (i % 8)).collect::<Vec<_>>()),
        ("uniform", vec![4u64; 20]),
    ] {
        let g = generators::star(20);
        let w = VertexWeights::from_vec(weights);
        let opt = mwvc_weight(&square(&g), &w);
        let r = g2_mwvc_congest_cfg(&g, &w, 0.5, &exp_cfg()).expect("simulation");
        t.row(&[
            format!("star/{name}"),
            "0.5".into(),
            r.s_weight.to_string(),
            r.weight(&w).to_string(),
            opt.to_string(),
            f3(r.weight(&w) as f64 / opt.max(1) as f64),
        ]);
    }

    println!("\nshape check: norm = rounds/(n·log n/ε) stays O(1) — Theorem 7's bound.");
}
