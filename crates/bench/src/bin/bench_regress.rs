//! Sequential-wall-time regression gate over the committed bench
//! snapshots.
//!
//! Usage:
//!
//! ```text
//! bench_regress <baseline.json> <fresh.json> [--max-regress 0.25] [--min-ms 50] [--codec-parity]
//! bench_regress <BENCH_fault.json baseline> <fresh> --fault
//! ```
//!
//! Compares every *sequential* engine timing of `fresh.json` against
//! the same `(workload, engine)` entry of `baseline.json` (both in the
//! `BENCH_sim.json` / `BENCH_mpc.json` schema) and exits with code 3 if
//! any of them regressed by more than `--max-regress` (a fraction;
//! default 0.25, i.e. +25%). Parallel timings are deliberately not
//! gated — they depend on the host's core count — and baselines below
//! `--min-ms` (default 50 ms) are skipped because percentage noise on
//! millisecond-scale runs is not signal.
//!
//! With `--fault`, both documents are treated as `BENCH_fault.json`
//! snapshots and the gate switches from wall-time budgets to an
//! **exact** comparison: the fault plane is deterministic by contract,
//! so after stripping the `wall_ms` timing lines the fresh document
//! must equal the committed baseline byte for byte (exit code 3
//! otherwise, with the first differing lines printed).
//!
//! With `--codec-parity`, additionally checks — *within* the fresh
//! document — every workload that carries both a `parallel` and a
//! `parallel_codec` entry at the same thread count (the `bench_scale`
//! workloads): the packed-codec plane must not be slower than the enum
//! plane by more than `--max-regress` (exit code 3). Pairs whose
//! thread count exceeds the host's CPU count are reported but not
//! gated, since oversubscribed wall times are scheduler noise.
//!
//! CI copies the committed snapshots aside before re-running the bench
//! binaries and then diffs the fresh artifacts against them, so a
//! refactor that slows the sequential reference path (which every
//! speedup figure is measured against) fails loudly instead of
//! landing as a quietly inflated "speedup". Caveat: the committed
//! baselines are measured on whatever machine last regenerated the
//! snapshots, which need not match CI's runner class — this gate is a
//! coarse tripwire against order-of-magnitude regressions, not a
//! precision benchmark. If a runner-class change (not a code change)
//! trips it, regenerate the snapshots on the new class in the same PR,
//! or widen `--max-regress` in `ci.yml` deliberately.

use pga_bench::harness::{fault_fingerprint, parse_engine_walls};

fn arg_after(args: &[String], flag: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--fault` mode: both documents are `BENCH_fault.json` snapshots.
/// Everything in them except the timing lines is a pure function of
/// `(instance seed, FaultSpec)`, so the gate is an exact byte diff of
/// the timing-stripped fingerprints — any drift means fault decisions
/// stopped being schedule-independent (exit code 3).
fn diff_fault_docs(baseline_path: &str, baseline: &str, fresh_path: &str, fresh: &str) {
    println!("bench_regress --fault: {baseline_path} vs {fresh_path} (exact, timing-stripped)");
    let base = fault_fingerprint(baseline);
    let new = fault_fingerprint(fresh);
    if base == new {
        println!("  fault fingerprints identical");
        return;
    }
    let mut shown = 0usize;
    for (i, (b, f)) in base.lines().zip(new.lines()).enumerate() {
        if b != f {
            eprintln!(
                "  line {}: baseline `{}` != fresh `{}`",
                i + 1,
                b.trim(),
                f.trim()
            );
            shown += 1;
            if shown >= 10 {
                eprintln!("  (further diffs suppressed)");
                break;
            }
        }
    }
    if base.lines().count() != new.lines().count() {
        eprintln!(
            "  line counts differ: baseline {} vs fresh {}",
            base.lines().count(),
            new.lines().count()
        );
    }
    eprintln!("FAIL: fault-plane snapshot diverged from the committed baseline");
    std::process::exit(3);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, fresh_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(f)) if !b.starts_with("--") && !f.starts_with("--") => (b, f),
        _ => {
            eprintln!(
                "usage: bench_regress <baseline.json> <fresh.json> [--max-regress 0.25] [--min-ms 50]"
            );
            std::process::exit(64);
        }
    };
    let max_regress = arg_after(&args, "--max-regress", 0.25);
    let min_ms = arg_after(&args, "--min-ms", 50.0);

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_regress: cannot read {path}: {e}");
            std::process::exit(66);
        })
    };
    let baseline_doc = read(baseline_path);
    let fresh_doc = read(fresh_path);
    if args.iter().any(|a| a == "--fault") {
        diff_fault_docs(baseline_path, &baseline_doc, fresh_path, &fresh_doc);
        return;
    }
    let baseline = parse_engine_walls(&baseline_doc);
    let fresh = parse_engine_walls(&fresh_doc);

    println!(
        "bench_regress: {} vs {} (sequential entries only, max +{:.0}%, floor {min_ms} ms)",
        baseline_path,
        fresh_path,
        max_regress * 100.0
    );
    let mut failures = 0usize;
    let mut compared = 0usize;
    for (workload, engine, threads, base_ms) in &baseline {
        if !engine.contains("sequential") {
            continue;
        }
        if *base_ms < min_ms {
            println!("  {workload}/{engine}: baseline {base_ms:.1} ms below floor, skipped");
            continue;
        }
        let Some((_, _, _, fresh_ms)) = fresh
            .iter()
            .find(|(w, e, t, _)| w == workload && e == engine && t == threads)
        else {
            eprintln!("  {workload}/{engine}: MISSING from fresh document");
            failures += 1;
            continue;
        };
        compared += 1;
        let ratio = fresh_ms / base_ms;
        let verdict = if ratio > 1.0 + max_regress {
            failures += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {workload}/{engine}: {base_ms:.1} ms -> {fresh_ms:.1} ms ({:+.1}%) {verdict}",
            (ratio - 1.0) * 100.0
        );
    }
    if args.iter().any(|a| a == "--codec-parity") {
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        let mut pairs = 0usize;
        for (workload, engine, threads, enum_ms) in &fresh {
            if engine != "parallel" {
                continue;
            }
            let Some((_, _, _, codec_ms)) = fresh
                .iter()
                .find(|(w, e, t, _)| w == workload && e == "parallel_codec" && t == threads)
            else {
                continue;
            };
            pairs += 1;
            let ratio = codec_ms / enum_ms;
            let gated = cpus >= *threads;
            let verdict = if ratio > 1.0 + max_regress && gated {
                failures += 1;
                "REGRESSED"
            } else if !gated {
                "ungated (oversubscribed host)"
            } else {
                "ok"
            };
            println!(
                "  {workload}: codec {codec_ms:.1} ms vs enum {enum_ms:.1} ms at {threads} threads ({:+.1}%) {verdict}",
                (ratio - 1.0) * 100.0
            );
        }
        if pairs == 0 {
            eprintln!("  codec parity: MISSING parallel/parallel_codec pairs in fresh document");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "FAIL: {failures} gated timing(s) regressed more than {:.0}%",
            max_regress * 100.0
        );
        std::process::exit(3);
    }
    println!("  all {compared} gated sequential timings within budget");
}
