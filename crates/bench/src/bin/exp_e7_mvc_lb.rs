//! E7 — Figures 1–3 (Theorems 20, 22): the vertex-cover lower-bound
//! families.
//!
//! For each `k`: builds `G_{x,y}` and both `H_{x,y}` variants, reports
//! the structural quantities Theorem 19 consumes (vertices `O(k log k)`,
//! cut `O(log k)`), the implied round lower bound `Ω(k²/(|C| log n))`,
//! and — at verification sizes — checks the predicate ⇔ DISJ equivalence
//! and the gadget lemmas with exact solvers.

use pga_bench::{banner, f3, Table};
use pga_exact::vc::{mvc_size, solve_mvc_with_budget};
use pga_exact::wvc::solve_mwvc_with_budget;
use pga_graph::power::square;
use pga_lowerbounds::disjointness::DisjInstance;
use pga_lowerbounds::{ckp17, mvc, mwvc};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E7: structure of the MVC lower-bound families");
    let t = Table::new(&[
        "k",
        "n(G)",
        "cut(G)",
        "n(H_w)",
        "cut(H_w)",
        "n(H_u)",
        "cut(H_u)",
        "Thm19 bound",
    ]);
    for &k in &[2usize, 4, 8, 16, 32] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let inst = DisjInstance::random(k, 0.5, &mut rng);
        let g = ckp17::build(&inst);
        let hw = mwvc::build(&inst);
        let hu = mvc::build(&inst);
        t.row(&[
            k.to_string(),
            g.graph().num_nodes().to_string(),
            g.partitioned.cut_size().to_string(),
            hw.graph().num_nodes().to_string(),
            hw.partitioned.cut_size().to_string(),
            hu.graph().num_nodes().to_string(),
            hu.partitioned.cut_size().to_string(),
            f3(hu.partitioned.theorem19_round_bound(k)),
        ]);
    }

    banner("E7b: predicate ⇔ DISJ verification (exact solvers)");
    let t = Table::new(&[
        "k",
        "instance",
        "DISJ",
        "G fits W",
        "H_w² fits",
        "H_u² fits",
    ]);
    for &k in &[2usize, 4] {
        let mut rng = StdRng::seed_from_u64(70 + k as u64);
        for (name, inst) in [
            (
                "intersecting",
                DisjInstance::random_intersecting(k, 0.4, &mut rng),
            ),
            ("disjoint", DisjInstance::random_disjoint(k, 0.4, &mut rng)),
        ] {
            let g = ckp17::build(&inst);
            let g_fits = solve_mvc_with_budget(g.graph(), g.cover_budget()).is_some();

            let (hw_fits, hu_fits) = if k <= 2 {
                let hw = mwvc::build(&inst);
                let hw2 = square(hw.graph());
                let a = solve_mwvc_with_budget(&hw2, &hw.weights, hw.budget).is_some();
                let hu = mvc::build(&inst);
                let b = solve_mvc_with_budget(&square(hu.graph()), hu.budget).is_some();
                (a.to_string(), b.to_string())
            } else {
                ("(skip)".to_string(), "(skip)".to_string())
            };
            assert_eq!(g_fits, !inst.disjoint());
            t.row(&[
                k.to_string(),
                name.to_string(),
                inst.disjoint().to_string(),
                g_fits.to_string(),
                hw_fits,
                hu_fits,
            ]);
        }
    }

    banner("E7c: Lemma 24 — MVC(H²) = MVC(G) + 2·#gadgets at k = 2");
    let t = Table::new(&["seed", "MVC(G)", "#gadgets", "MVC(H^2)", "equal"]);
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = DisjInstance::random(2, 0.5, &mut rng);
        let g = ckp17::build(&inst);
        let h = mvc::build(&inst);
        let lhs = mvc_size(&square(h.graph()));
        let rhs = mvc_size(g.graph()) + 2 * h.num_gadgets;
        t.row(&[
            seed.to_string(),
            mvc_size(g.graph()).to_string(),
            h.num_gadgets.to_string(),
            lhs.to_string(),
            (lhs == rhs).to_string(),
        ]);
        assert_eq!(lhs, rhs);
    }

    println!("\nTheorem 19 reading: Ω(k²) DISJ bits over an O(log k) cut on O(k log k)");
    println!("vertices ⇒ Ω̃(n²) CONGEST rounds for exact G²-MVC / G²-MWVC (Thms 20, 22).");
}
