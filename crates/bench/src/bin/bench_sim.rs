//! Bench-smoke for the simulation round engines.
//!
//! Runs three message-heavy workloads on pinned seeded instances
//! (default: a 60k/240k uniform gnm, a heavy-tailed Barabási–Albert,
//! and a quiescent-tail "lollipop"), sweeping the sharded parallel
//! engine over thread counts {2, 4, 8} next to the sequential
//! reference, then:
//!
//! * verifies every engine run produced **bit-identical** outputs and
//!   metrics (exit code 1 on divergence — this is CI's correctness
//!   gate),
//! * writes the machine-readable `BENCH_sim.json` artifact
//!   (schema: `pga_bench::harness::SimBench`), including the
//!   cost-balanced per-shard load statistics of the gate thread count,
//! * with `--assert-speedup`, additionally enforces per-workload
//!   speedup floors at the gate thread count (4 by default): ≥ 1.05×
//!   on `floodmax`, ≥ 1.5× on `aggregate8`, and ≥ 1.2× on the
//!   heavy-tailed `floodmax_ba` (exit code 2 otherwise; skipped with a
//!   notice when the host has fewer CPUs than gate threads, as speedup
//!   is physically impossible there).
//!
//! The quiescent-tail workload (`floodmax_tail`) runs FloodMax to full
//! termination on the lollipop instance (gnm blob + long path) under
//! both scheduling policies and both engines, asserts the four runs are
//! bit-identical, and — with `--assert-speedup` on a multi-CPU host —
//! requires active-set scheduling to be at least 1.3× faster than the
//! full sweep (exit code 2 otherwise).
//!
//! Two `G²`-materialization workloads ride along:
//!
//! * `square_gnm` times the scalar mark-array square against the
//!   bitset-blocked BMM kernel (sequential and sharded) on the pinned
//!   gnm instance; with `--assert-speedup` the sequential bitset kernel
//!   must be ≥ 1.5× faster than scalar (exit code 2) — gated even on a
//!   single-CPU host, since it is a single-thread comparison.
//! * `bmm_sbm` runs the deterministic clique-MVC pipeline on a pinned
//!   planted-partition (SBM) instance under both `G²` preparations —
//!   the relay Phase I and the BMM-prep direct Phase I — and feeds the
//!   bit-identity gate (exit code 1): the covers must match exactly,
//!   and the parallel BMM run must reproduce the sequential one.
//!
//! Environment overrides: `BENCH_SIM_N` (vertices), `BENCH_SIM_AVG_DEG`
//! (average degree), `BENCH_SIM_SEED`, `BENCH_SIM_THREADS` (gate
//! thread count), `BENCH_SIM_REPS` (best-of repetitions),
//! `BENCH_SIM_OUT` (artifact path), `BENCH_SIM_BA_N` / `BENCH_SIM_BA_K`
//! (the second pinned Barabási–Albert instance), `BENCH_SIM_TAIL_BLOB_N`
//! / `BENCH_SIM_TAIL_BLOB_M` / `BENCH_SIM_TAIL_LEN` (the lollipop),
//! `BENCH_SIM_SBM_N` / `BENCH_SIM_SBM_K` (the SBM instance).

use pga_bench::harness::{
    env_u64, env_usize, time_ms, EngineTiming, ShardLoad, SimBench, WorkloadRecord,
};
use pga_congest::primitives::FloodMax;
use pga_congest::{Algorithm, Ctx, Metrics, MsgSize, Report, RunConfig, Scheduling, Simulator};
use pga_core::mvc::clique_det::g2_mvc_clique_det_cfg;
use pga_core::mvc::congest::LocalSolver;
use pga_graph::bmm::{square_bmm, square_bmm_sharded};
use pga_graph::power::square_scalar;
use pga_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A 64-bit payload, charged 64 bits.
#[derive(Clone)]
struct Word(u64);

impl MsgSize for Word {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64
    }
}

/// Fixed-horizon neighborhood aggregation: for `rounds_left` rounds every
/// node mixes its inbox into an accumulator and re-broadcasts it. Uniform
/// per-round load on every edge — the worst case for the exchange phase —
/// and the mixing makes any delivery-order deviation show up in the
/// outputs immediately.
struct Aggregate {
    acc: u64,
    rounds_left: usize,
}

impl Algorithm for Aggregate {
    type Msg = Word;
    type Output = u64;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Word)]) -> Vec<(NodeId, Word)> {
        for (from, m) in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(m.0 ^ from.0 as u64);
        }
        if self.rounds_left == 0 {
            return Vec::new();
        }
        self.rounds_left -= 1;
        ctx.graph_neighbors
            .iter()
            .map(|&v| (v, Word(self.acc)))
            .collect()
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.rounds_left == 0
    }

    fn output(&self, _ctx: &Ctx) -> u64 {
        self.acc
    }
}

/// The parallel thread counts every engine workload sweeps (next to the
/// sequential reference, which is the `threads = 1` point).
const THREAD_SWEEP: [usize; 3] = [2, 4, 8];

/// Best-of-`reps` wall time for a run, plus the (rep-invariant) report.
fn best_of<A, F>(
    reps: usize,
    mk: F,
    run: impl Fn(Vec<A>) -> Report<A::Output>,
) -> (Report<A::Output>, f64)
where
    A: Algorithm,
    F: Fn() -> Vec<A>,
{
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(|| run(mk()));
        best_ms = best_ms.min(ms);
        report = Some(r);
    }
    (report.unwrap(), best_ms)
}

/// The per-shard load statistics of the cost-balanced partition the
/// parallel engine uses on `g` at `threads`.
fn shard_load(g: &Graph, threads: usize) -> Vec<ShardLoad> {
    let sim = Simulator::congest(g);
    let costs: Vec<u64> = (0..g.num_nodes()).map(|i| sim.vertex_cost(i)).collect();
    ShardLoad::from_partition(&costs, &sim.shard_boundaries(threads))
}

/// Runs one workload on the sequential engine and on the parallel
/// engine at every swept thread count, and assembles the record.
fn bench_workload<A, F>(
    name: &str,
    graph_name: &str,
    g: &Graph,
    gate_threads: usize,
    reps: usize,
    mk: F,
) -> WorkloadRecord
where
    A: Algorithm + Send,
    A::Msg: Send,
    A::Output: PartialEq + std::fmt::Debug,
    F: Fn() -> Vec<A>,
{
    let (seq, seq_ms) = best_of(reps, &mk, |nodes| {
        Simulator::congest(g).run(nodes).expect("sequential run")
    });

    let mut engines = vec![EngineTiming {
        engine: "sequential".into(),
        threads: 1,
        wall_ms: seq_ms,
    }];
    let mut identical = true;
    let mut gate_ms = f64::NAN;
    let mut sweep: Vec<usize> = THREAD_SWEEP.to_vec();
    if !sweep.contains(&gate_threads) {
        sweep.push(gate_threads);
        sweep.sort_unstable();
    }
    for threads in sweep {
        let (par, par_ms) = best_of(reps, &mk, |nodes| {
            Simulator::congest(g)
                .run_parallel(nodes, threads)
                .expect("parallel run")
        });
        let same = par.outputs == seq.outputs && par.metrics == seq.metrics;
        if !same {
            eprintln!("DIVERGENCE in workload '{name}' at {threads} threads:");
            eprintln!("  sequential metrics: {}", seq.metrics);
            eprintln!("  parallel   metrics: {}", par.metrics);
            if par.outputs != seq.outputs {
                eprintln!("  outputs differ");
            }
        }
        identical &= same;
        if threads == gate_threads {
            gate_ms = par_ms;
        }
        engines.push(EngineTiming {
            engine: "parallel".into(),
            threads,
            wall_ms: par_ms,
        });
    }

    let Metrics {
        rounds,
        messages,
        bits,
        ..
    } = seq.metrics;
    WorkloadRecord {
        name: name.to_string(),
        graph: graph_name.to_string(),
        n: g.num_nodes(),
        m: g.num_edges(),
        rounds,
        messages,
        bits,
        peak_edge_bits: seq.metrics.peak_edge_bits(),
        congestion_p95: seq.metrics.congestion_percentile(0.95),
        engines,
        shard_load: shard_load(g, gate_threads),
        io: None,
        speedup: seq_ms / gate_ms,
        identical,
    }
}

/// Times FloodMax-to-full-termination on the lollipop under both
/// scheduling policies (sequential and parallel), asserting the four
/// runs are bit-identical, and reports full-sweep / active-set as the
/// record's `speedup`.
fn bench_tail_workload(g: &Graph, threads: usize, reps: usize) -> WorkloadRecord {
    let n = g.num_nodes();
    let mk = || {
        (0..n)
            .map(|i| FloodMax::new(NodeId::from_index(i)))
            .collect::<Vec<_>>()
    };
    let run = |scheduling: Scheduling, par: bool| {
        best_of(reps, &mk, |nodes| {
            let sim = Simulator::congest(g).with_scheduling(scheduling);
            if par {
                sim.run_parallel(nodes, threads).expect("tail run")
            } else {
                sim.run(nodes).expect("tail run")
            }
        })
    };
    let (full, full_ms) = run(Scheduling::FullSweep, false);
    let (active, active_ms) = run(Scheduling::ActiveSet, false);
    let (par_full, par_full_ms) = run(Scheduling::FullSweep, true);
    let (par_active, par_active_ms) = run(Scheduling::ActiveSet, true);

    let identical = [&active, &par_full, &par_active]
        .iter()
        .all(|r| r.outputs == full.outputs && r.metrics == full.metrics);
    if !identical {
        eprintln!("DIVERGENCE in workload 'floodmax_tail' (scheduling policies or engines)");
    }
    WorkloadRecord {
        name: "floodmax_tail".into(),
        graph: "gnm_lollipop".into(),
        n,
        m: g.num_edges(),
        rounds: full.metrics.rounds,
        messages: full.metrics.messages,
        bits: full.metrics.bits,
        peak_edge_bits: full.metrics.peak_edge_bits(),
        congestion_p95: full.metrics.congestion_percentile(0.95),
        engines: vec![
            EngineTiming {
                engine: "sequential_full_sweep".into(),
                threads: 1,
                wall_ms: full_ms,
            },
            EngineTiming {
                engine: "sequential_active_set".into(),
                threads: 1,
                wall_ms: active_ms,
            },
            EngineTiming {
                engine: "parallel_full_sweep".into(),
                threads,
                wall_ms: par_full_ms,
            },
            EngineTiming {
                engine: "parallel_active_set".into(),
                threads,
                wall_ms: par_active_ms,
            },
        ],
        shard_load: shard_load(g, threads),
        io: None,
        // For the tail record, speedup compares scheduling policies on
        // the sequential engine (full sweep / active set).
        speedup: full_ms / active_ms,
        identical,
    }
}

/// Best-of-`reps` wall time for an arbitrary computation.
fn best_wall<T>(reps: usize, f: impl Fn() -> T) -> (T, f64) {
    let mut best_ms = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(&f);
        best_ms = best_ms.min(ms);
        out = Some(r);
    }
    (out.unwrap(), best_ms)
}

/// `G²` materialization on the pinned gnm instance: the scalar
/// mark-array loop against the bitset-blocked BMM kernel (sequential
/// and sharded). Not a message workload — rounds/messages/bits are 0 —
/// but the record's `speedup` (scalar / sequential-bitset) is the CI
/// floor for the kernel, and `identical` asserts all three squares
/// agree CSR-array for CSR-array.
fn bench_square_workload(g: &Graph, threads: usize, reps: usize) -> WorkloadRecord {
    let (scalar, scalar_ms) = best_wall(reps, || square_scalar(g));
    let (bmm, bmm_ms) = best_wall(reps, || square_bmm(g));
    let (sharded, sharded_ms) = best_wall(reps, || square_bmm_sharded(g, threads));
    let identical = bmm.csr() == scalar.csr() && sharded.csr() == bmm.csr();
    if !identical {
        eprintln!("DIVERGENCE in workload 'square_gnm': BMM square != scalar square");
    }
    WorkloadRecord {
        name: "square_gnm".into(),
        graph: "connected_gnm".into(),
        n: g.num_nodes(),
        m: g.num_edges(),
        rounds: 0,
        messages: 0,
        bits: 0,
        peak_edge_bits: 0,
        congestion_p95: 0,
        engines: vec![
            EngineTiming {
                engine: "sequential_square_scalar".into(),
                threads: 1,
                wall_ms: scalar_ms,
            },
            EngineTiming {
                engine: "sequential_square_bmm".into(),
                threads: 1,
                wall_ms: bmm_ms,
            },
            EngineTiming {
                engine: "parallel_square_bmm".into(),
                threads,
                wall_ms: sharded_ms,
            },
        ],
        shard_load: Vec::new(),
        io: None,
        speedup: scalar_ms / bmm_ms,
        identical,
    }
}

/// The clustered-workload pipeline comparison on the pinned SBM
/// instance: the relay clique-MVC pipeline against the BMM-prep one
/// (`RunConfig::bmm_prep`), sequential and at the gate thread count.
/// `identical` is the acceptance gate: the BMM cover must equal the
/// relay cover bit for bit, and the parallel BMM run must reproduce the
/// sequential one exactly (cover and metrics). `speedup` compares the
/// two sequential pipelines (relay / BMM).
fn bench_bmm_sbm_workload(sbm: &Graph, threads: usize, reps: usize) -> WorkloadRecord {
    let eps = 0.5;
    let run = |cfg: &RunConfig| {
        g2_mvc_clique_det_cfg(sbm, eps, LocalSolver::FiveThirds, cfg).expect("clique MVC run")
    };
    let (relay, relay_ms) = best_wall(reps, || run(&RunConfig::new()));
    let (bmm, bmm_ms) = best_wall(reps, || run(&RunConfig::new().bmm_prep()));
    let (par, par_ms) = best_wall(reps, || run(&RunConfig::new().bmm_prep().parallel(threads)));

    let cover_identical = relay.cover == bmm.cover;
    let engines_identical = par.cover == bmm.cover
        && par.phase1_metrics == bmm.phase1_metrics
        && par.phase2_metrics == bmm.phase2_metrics;
    if !cover_identical {
        eprintln!("DIVERGENCE in workload 'bmm_sbm': BMM cover != relay cover");
    }
    if !engines_identical {
        eprintln!("DIVERGENCE in workload 'bmm_sbm': parallel BMM run != sequential BMM run");
    }

    // The communication columns report the BMM pipeline (both phases).
    let rounds = bmm.phase1_metrics.rounds + bmm.phase2_metrics.rounds;
    let messages = bmm.phase1_metrics.messages + bmm.phase2_metrics.messages;
    let bits = bmm.phase1_metrics.bits + bmm.phase2_metrics.bits;
    WorkloadRecord {
        name: "bmm_sbm".into(),
        graph: "planted_partition".into(),
        n: sbm.num_nodes(),
        m: sbm.num_edges(),
        rounds,
        messages,
        bits,
        peak_edge_bits: bmm
            .phase1_metrics
            .peak_edge_bits()
            .max(bmm.phase2_metrics.peak_edge_bits()),
        congestion_p95: bmm.phase1_metrics.congestion_percentile(0.95),
        engines: vec![
            EngineTiming {
                engine: "sequential_relay_mvc".into(),
                threads: 1,
                wall_ms: relay_ms,
            },
            EngineTiming {
                engine: "sequential_bmm_mvc".into(),
                threads: 1,
                wall_ms: bmm_ms,
            },
            EngineTiming {
                engine: "parallel_bmm_mvc".into(),
                threads,
                wall_ms: par_ms,
            },
        ],
        shard_load: shard_load(sbm, threads),
        io: None,
        speedup: relay_ms / bmm_ms,
        identical: cover_identical && engines_identical,
    }
}

fn main() {
    let assert_speedup = std::env::args().any(|a| a == "--assert-speedup");
    let n = env_usize("BENCH_SIM_N", 60_000);
    let avg_deg = env_usize("BENCH_SIM_AVG_DEG", 8);
    let seed = env_u64("BENCH_SIM_SEED", 45_803);
    let threads = env_usize("BENCH_SIM_THREADS", 4);
    let reps = env_usize("BENCH_SIM_REPS", 2);
    let out = PathBuf::from(
        std::env::var("BENCH_SIM_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_string()),
    );
    let m = (n * avg_deg / 2).max(n.saturating_sub(1));

    println!("bench_sim: pinned instance n={n} m={m} seed={seed}, parallel sweep {THREAD_SWEEP:?} (gate at {threads}), best of {reps}");
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, gen_ms) = time_ms(|| generators::connected_gnm(n, m, &mut rng));
    let (offsets, targets) = g.csr();
    println!(
        "  graph generated in {gen_ms:.0} ms (CSR: {} offsets, {} directed entries)",
        offsets.len(),
        targets.len()
    );

    // Second pinned instance: Barabási–Albert preferential attachment —
    // the heavy-tailed counterpart of the uniform gnm instance, so the
    // exchange phase is exercised under skewed per-shard load (the
    // cost-balanced partition is what keeps its hubs from piling into
    // one shard).
    let ba_n = env_usize("BENCH_SIM_BA_N", n / 2);
    let ba_k = env_usize("BENCH_SIM_BA_K", 8);
    let (ba, ba_ms) = time_ms(|| generators::barabasi_albert(ba_n, ba_k, seed));
    println!(
        "  barabasi_albert({ba_n}, {ba_k}, {seed}) generated in {ba_ms:.0} ms ({} edges)",
        ba.num_edges()
    );

    // Quiescent-tail instance: a gnm blob with a long path attached (the
    // blob goes quiet early while the flood crawls down the path).
    let tail_blob_n = env_usize("BENCH_SIM_TAIL_BLOB_N", 30_000);
    let tail_blob_m = env_usize("BENCH_SIM_TAIL_BLOB_M", 60_000);
    let tail_len = env_usize("BENCH_SIM_TAIL_LEN", 3_000);
    let (lolli, lolli_ms) =
        time_ms(|| generators::gnm_lollipop(tail_blob_n, tail_blob_m, tail_len, seed));
    println!(
        "  gnm_lollipop(blob {tail_blob_n}/{tail_blob_m}, tail {tail_len}, {seed}) generated in {lolli_ms:.0} ms ({} edges)",
        lolli.num_edges()
    );

    // Clustered instance: a pinned planted-partition (SBM) graph with
    // contiguous 64-wide clusters — the workload class on which the
    // congested-clique BMM is fast (rows pack into few 64-bit blocks).
    let sbm_n = env_usize("BENCH_SIM_SBM_N", 2_048);
    let sbm_k = env_usize("BENCH_SIM_SBM_K", 32);
    let (sbm, sbm_ms) = time_ms(|| generators::planted_partition(sbm_n, sbm_k, 0.25, 0.0015, seed));
    println!(
        "  planted_partition({sbm_n}, {sbm_k}, 0.25, 0.0015, {seed}) generated in {sbm_ms:.0} ms ({} edges)",
        sbm.num_edges()
    );

    let workloads = vec![
        bench_workload("floodmax", "connected_gnm", &g, threads, reps, || {
            (0..n)
                .map(|i| FloodMax::new(NodeId::from_index(i)))
                .collect()
        }),
        bench_workload("aggregate8", "connected_gnm", &g, threads, reps, || {
            (0..n)
                .map(|i| Aggregate {
                    acc: i as u64,
                    rounds_left: 8,
                })
                .collect()
        }),
        bench_workload("floodmax_ba", "barabasi_albert", &ba, threads, reps, || {
            (0..ba.num_nodes())
                .map(|i| FloodMax::new(NodeId::from_index(i)))
                .collect()
        }),
        bench_tail_workload(&lolli, threads, reps),
        bench_square_workload(&g, threads, reps),
        bench_bmm_sbm_workload(&sbm, threads, reps),
    ];

    for w in &workloads {
        let timings: Vec<String> = w
            .engines
            .iter()
            .map(|e| format!("{}({}) {:.0} ms", e.engine, e.threads, e.wall_ms))
            .collect();
        let loads: Vec<String> = w
            .shard_load
            .iter()
            .map(|l| format!("{}", l.total_cost))
            .collect();
        println!(
            "  {:>13}: {} rounds, {} msgs, p95 edge {} bits | {} | shard costs [{}] | speedup {:.2}x, identical: {}",
            w.name,
            w.rounds,
            w.messages,
            w.congestion_p95,
            timings.join(", "),
            loads.join(", "),
            w.speedup,
            w.identical
        );
    }

    let doc = SimBench {
        bench: "sim_round_engine".into(),
        seed,
        n,
        m: g.num_edges(),
        workloads,
    };
    doc.write_json(&out).expect("write BENCH_sim.json");
    println!("  wrote {}", out.display());

    if doc.workloads.iter().any(|w| !w.identical) {
        eprintln!("FAIL: parallel and sequential outputs diverged");
        std::process::exit(1);
    }
    println!("  engines bit-identical on every workload");

    if assert_speedup {
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cpus < threads.max(2) {
            // Fewer CPUs than shard threads: the workers oversubscribe the
            // cores and speedup is down to scheduler luck, so the gate
            // would be noise, not signal.
            println!(
                "  speedup assertion SKIPPED: {cpus} CPU(s) available for {threads} shard threads"
            );
        } else {
            // Per-workload floors at the gate thread count. The
            // heavy-tailed Barabási–Albert instance is gated too: with
            // cost-balanced shard boundaries its hubs no longer pile
            // into one shard, so near-sequential behavior there is a
            // regression, not an expectation.
            let floors = [
                ("floodmax", 1.05),
                ("aggregate8", 1.5),
                ("floodmax_ba", 1.2),
            ];
            let mut failed = false;
            for (name, floor) in floors {
                let w = doc
                    .workloads
                    .iter()
                    .find(|w| w.name == name)
                    .expect("gated workload present");
                if w.speedup < floor {
                    eprintln!(
                        "FAIL: '{name}' speedup {:.2}x below its {floor:.2}x floor at {threads} threads",
                        w.speedup
                    );
                    failed = true;
                } else {
                    println!(
                        "  speedup floor passed: '{name}' {:.2}x >= {floor:.2}x",
                        w.speedup
                    );
                }
            }
            if failed {
                std::process::exit(2);
            }
        }

        // Bitset-square gate: the BMM kernel must beat the scalar
        // mark-array loop by ≥ 1.5× on the pinned gnm instance. This is
        // a single-thread comparison, so it is gated even on a
        // single-CPU host.
        let sq = doc
            .workloads
            .iter()
            .find(|w| w.name == "square_gnm")
            .expect("square workload present");
        if sq.speedup < 1.5 {
            eprintln!(
                "FAIL: bitset square only {:.2}x over scalar (floor 1.5x) on gnm({n}, {})",
                sq.speedup,
                g.num_edges()
            );
            std::process::exit(2);
        }
        println!(
            "  square kernel floor passed: bitset {:.2}x >= 1.5x over scalar",
            sq.speedup
        );

        // Quiescent-tail gate: active-set scheduling must beat the full
        // sweep on the lollipop's long quiet tail.
        if cpus < 2 {
            println!("  tail scheduling assertion SKIPPED: single-CPU host");
        } else if let Some(tail) = doc.workloads.iter().find(|w| w.name == "floodmax_tail") {
            if tail.speedup < 1.3 {
                eprintln!(
                    "FAIL: active-set scheduling not >= 1.3x faster than full sweep on the quiescent tail ({:.2}x)",
                    tail.speedup
                );
                std::process::exit(2);
            }
            println!(
                "  tail scheduling assertion passed (active-set {:.2}x >= 1.3x over full sweep)",
                tail.speedup
            );
        }
    }
}
