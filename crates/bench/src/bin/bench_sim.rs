//! Bench-smoke for the simulation round engines.
//!
//! Runs two message-heavy workloads on one pinned seeded instance
//! (default: 60k vertices, 240k edges), once on the sequential reference
//! engine and once on the sharded parallel engine, then:
//!
//! * verifies the two engines produced **bit-identical** outputs and
//!   metrics (exit code 1 on divergence — this is CI's correctness gate),
//! * writes the machine-readable `BENCH_sim.json` artifact
//!   (schema: `pga_bench::harness::SimBench`),
//! * with `--assert-speedup`, additionally requires the parallel engine
//!   to be measurably faster than the sequential one (exit code 2
//!   otherwise; skipped with a notice when fewer than two CPUs are
//!   available, as speedup is physically impossible there).
//!
//! Environment overrides: `BENCH_SIM_N` (vertices), `BENCH_SIM_AVG_DEG`
//! (average degree), `BENCH_SIM_SEED`, `BENCH_SIM_THREADS`,
//! `BENCH_SIM_REPS` (best-of repetitions), `BENCH_SIM_OUT` (artifact
//! path), `BENCH_SIM_BA_N` / `BENCH_SIM_BA_K` (the second pinned
//! Barabási–Albert instance).

use pga_bench::harness::{env_u64, env_usize, time_ms, EngineTiming, SimBench, WorkloadRecord};
use pga_congest::primitives::FloodMax;
use pga_congest::{Algorithm, Ctx, Metrics, MsgSize, Report, Simulator};
use pga_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A 64-bit payload, charged 64 bits.
#[derive(Clone)]
struct Word(u64);

impl MsgSize for Word {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64
    }
}

/// Fixed-horizon neighborhood aggregation: for `rounds_left` rounds every
/// node mixes its inbox into an accumulator and re-broadcasts it. Uniform
/// per-round load on every edge — the worst case for the exchange phase —
/// and the mixing makes any delivery-order deviation show up in the
/// outputs immediately.
struct Aggregate {
    acc: u64,
    rounds_left: usize,
}

impl Algorithm for Aggregate {
    type Msg = Word;
    type Output = u64;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Word)]) -> Vec<(NodeId, Word)> {
        for (from, m) in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(m.0 ^ from.0 as u64);
        }
        if self.rounds_left == 0 {
            return Vec::new();
        }
        self.rounds_left -= 1;
        ctx.graph_neighbors
            .iter()
            .map(|&v| (v, Word(self.acc)))
            .collect()
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.rounds_left == 0
    }

    fn output(&self, _ctx: &Ctx) -> u64 {
        self.acc
    }
}

/// Best-of-`reps` wall time for a run, plus the (rep-invariant) report.
fn best_of<A, F>(
    reps: usize,
    mk: F,
    run: impl Fn(Vec<A>) -> Report<A::Output>,
) -> (Report<A::Output>, f64)
where
    A: Algorithm,
    F: Fn() -> Vec<A>,
{
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(|| run(mk()));
        best_ms = best_ms.min(ms);
        report = Some(r);
    }
    (report.unwrap(), best_ms)
}

/// Runs one workload on both engines and assembles the record.
fn bench_workload<A, F>(
    name: &str,
    graph_name: &str,
    g: &Graph,
    threads: usize,
    reps: usize,
    mk: F,
) -> WorkloadRecord
where
    A: Algorithm + Send,
    A::Msg: Send,
    A::Output: PartialEq + std::fmt::Debug,
    F: Fn() -> Vec<A>,
{
    let (seq, seq_ms) = best_of(reps, &mk, |nodes| {
        Simulator::congest(g).run(nodes).expect("sequential run")
    });
    let (par, par_ms) = best_of(reps, &mk, |nodes| {
        Simulator::congest(g)
            .run_parallel(nodes, threads)
            .expect("parallel run")
    });

    let identical = seq.outputs == par.outputs && seq.metrics == par.metrics;
    if !identical {
        eprintln!("DIVERGENCE in workload '{name}':");
        eprintln!("  sequential metrics: {}", seq.metrics);
        eprintln!("  parallel   metrics: {}", par.metrics);
        if seq.outputs != par.outputs {
            eprintln!("  outputs differ");
        }
    }
    let Metrics {
        rounds,
        messages,
        bits,
        ..
    } = seq.metrics;
    WorkloadRecord {
        name: name.to_string(),
        graph: graph_name.to_string(),
        n: g.num_nodes(),
        m: g.num_edges(),
        rounds,
        messages,
        bits,
        peak_edge_bits: seq.metrics.peak_edge_bits(),
        congestion_p95: seq.metrics.congestion_percentile(0.95),
        engines: vec![
            EngineTiming {
                engine: "sequential".into(),
                threads: 1,
                wall_ms: seq_ms,
            },
            EngineTiming {
                engine: "parallel".into(),
                threads,
                wall_ms: par_ms,
            },
        ],
        speedup: seq_ms / par_ms,
        identical,
    }
}

fn main() {
    let assert_speedup = std::env::args().any(|a| a == "--assert-speedup");
    let n = env_usize("BENCH_SIM_N", 60_000);
    let avg_deg = env_usize("BENCH_SIM_AVG_DEG", 8);
    let seed = env_u64("BENCH_SIM_SEED", 45_803);
    let threads = env_usize("BENCH_SIM_THREADS", 4);
    let reps = env_usize("BENCH_SIM_REPS", 2);
    let out = PathBuf::from(
        std::env::var("BENCH_SIM_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_string()),
    );
    let m = (n * avg_deg / 2).max(n.saturating_sub(1));

    println!("bench_sim: pinned instance n={n} m={m} seed={seed}, parallel threads={threads}, best of {reps}");
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, gen_ms) = time_ms(|| generators::connected_gnm(n, m, &mut rng));
    let (offsets, targets) = g.csr();
    println!(
        "  graph generated in {gen_ms:.0} ms (CSR: {} offsets, {} directed entries)",
        offsets.len(),
        targets.len()
    );

    // Second pinned instance: Barabási–Albert preferential attachment —
    // the heavy-tailed counterpart of the uniform gnm instance, so the
    // exchange phase is exercised under skewed per-shard load.
    let ba_n = env_usize("BENCH_SIM_BA_N", n / 2);
    let ba_k = env_usize("BENCH_SIM_BA_K", 8);
    let (ba, ba_ms) = time_ms(|| generators::barabasi_albert(ba_n, ba_k, seed));
    println!(
        "  barabasi_albert({ba_n}, {ba_k}, {seed}) generated in {ba_ms:.0} ms ({} edges)",
        ba.num_edges()
    );

    let workloads = vec![
        bench_workload("floodmax", "connected_gnm", &g, threads, reps, || {
            (0..n)
                .map(|i| FloodMax::new(NodeId::from_index(i)))
                .collect()
        }),
        bench_workload("aggregate8", "connected_gnm", &g, threads, reps, || {
            (0..n)
                .map(|i| Aggregate {
                    acc: i as u64,
                    rounds_left: 8,
                })
                .collect()
        }),
        bench_workload("floodmax_ba", "barabasi_albert", &ba, threads, reps, || {
            (0..ba.num_nodes())
                .map(|i| FloodMax::new(NodeId::from_index(i)))
                .collect()
        }),
    ];

    for w in &workloads {
        println!(
            "  {:>11}: {} rounds, {} msgs, p95 edge {} bits | seq {:.0} ms, par({threads}) {:.0} ms, speedup {:.2}x, identical: {}",
            w.name, w.rounds, w.messages, w.congestion_p95, w.engines[0].wall_ms, w.engines[1].wall_ms, w.speedup, w.identical
        );
    }

    let doc = SimBench {
        bench: "sim_round_engine".into(),
        seed,
        n,
        m: g.num_edges(),
        workloads,
    };
    doc.write_json(&out).expect("write BENCH_sim.json");
    println!("  wrote {}", out.display());

    if doc.workloads.iter().any(|w| !w.identical) {
        eprintln!("FAIL: parallel and sequential outputs diverged");
        std::process::exit(1);
    }
    println!("  engines bit-identical on every workload");

    if assert_speedup {
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cpus < threads.max(2) {
            // Fewer CPUs than shard threads: the workers oversubscribe the
            // cores and speedup is down to scheduler luck, so the gate
            // would be noise, not signal.
            println!(
                "  speedup assertion SKIPPED: {cpus} CPU(s) available for {threads} shard threads"
            );
        } else {
            // The gate covers the uniform gnm workloads; the pinned
            // Barabási–Albert instance is recorded for its skewed
            // per-shard load (hubs concentrate in one contiguous shard),
            // where near-sequential behavior is expected, not a
            // regression.
            let worst = doc
                .workloads
                .iter()
                .filter(|w| w.graph == "connected_gnm")
                .map(|w| w.speedup)
                .fold(f64::INFINITY, f64::min);
            if worst < 1.05 {
                eprintln!("FAIL: parallel engine not measurably faster (worst speedup {worst:.2}x < 1.05x)");
                std::process::exit(2);
            }
            println!("  speedup assertion passed (worst {worst:.2}x >= 1.05x)");
        }
    }
}
