//! Bench-smoke for the simulation round engines.
//!
//! Runs three message-heavy workloads on pinned seeded instances
//! (default: a 60k/240k uniform gnm, a heavy-tailed Barabási–Albert,
//! and a quiescent-tail "lollipop"), sweeping the sharded parallel
//! engine over thread counts {2, 4, 8} next to the sequential
//! reference, then:
//!
//! * verifies every engine run produced **bit-identical** outputs and
//!   metrics (exit code 1 on divergence — this is CI's correctness
//!   gate),
//! * writes the machine-readable `BENCH_sim.json` artifact
//!   (schema: `pga_bench::harness::SimBench`), including the
//!   cost-balanced per-shard load statistics of the gate thread count,
//! * with `--assert-speedup`, additionally enforces per-workload
//!   speedup floors at the gate thread count (4 by default): ≥ 1.05×
//!   on `floodmax`, ≥ 1.5× on `aggregate8`, and ≥ 1.2× on the
//!   heavy-tailed `floodmax_ba` (exit code 2 otherwise; skipped with a
//!   notice when the host has fewer CPUs than gate threads, as speedup
//!   is physically impossible there).
//!
//! The quiescent-tail workload (`floodmax_tail`) runs FloodMax to full
//! termination on the lollipop instance (gnm blob + long path) under
//! both scheduling policies and both engines, asserts the four runs are
//! bit-identical, and — with `--assert-speedup` on a multi-CPU host —
//! requires active-set scheduling to be at least 1.3× faster than the
//! full sweep (exit code 2 otherwise).
//!
//! Environment overrides: `BENCH_SIM_N` (vertices), `BENCH_SIM_AVG_DEG`
//! (average degree), `BENCH_SIM_SEED`, `BENCH_SIM_THREADS` (gate
//! thread count), `BENCH_SIM_REPS` (best-of repetitions),
//! `BENCH_SIM_OUT` (artifact path), `BENCH_SIM_BA_N` / `BENCH_SIM_BA_K`
//! (the second pinned Barabási–Albert instance), `BENCH_SIM_TAIL_BLOB_N`
//! / `BENCH_SIM_TAIL_BLOB_M` / `BENCH_SIM_TAIL_LEN` (the lollipop).

use pga_bench::harness::{
    env_u64, env_usize, time_ms, EngineTiming, ShardLoad, SimBench, WorkloadRecord,
};
use pga_congest::primitives::FloodMax;
use pga_congest::{Algorithm, Ctx, Metrics, MsgSize, Report, Scheduling, Simulator};
use pga_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A 64-bit payload, charged 64 bits.
#[derive(Clone)]
struct Word(u64);

impl MsgSize for Word {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64
    }
}

/// Fixed-horizon neighborhood aggregation: for `rounds_left` rounds every
/// node mixes its inbox into an accumulator and re-broadcasts it. Uniform
/// per-round load on every edge — the worst case for the exchange phase —
/// and the mixing makes any delivery-order deviation show up in the
/// outputs immediately.
struct Aggregate {
    acc: u64,
    rounds_left: usize,
}

impl Algorithm for Aggregate {
    type Msg = Word;
    type Output = u64;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Word)]) -> Vec<(NodeId, Word)> {
        for (from, m) in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(m.0 ^ from.0 as u64);
        }
        if self.rounds_left == 0 {
            return Vec::new();
        }
        self.rounds_left -= 1;
        ctx.graph_neighbors
            .iter()
            .map(|&v| (v, Word(self.acc)))
            .collect()
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.rounds_left == 0
    }

    fn output(&self, _ctx: &Ctx) -> u64 {
        self.acc
    }
}

/// The parallel thread counts every engine workload sweeps (next to the
/// sequential reference, which is the `threads = 1` point).
const THREAD_SWEEP: [usize; 3] = [2, 4, 8];

/// Best-of-`reps` wall time for a run, plus the (rep-invariant) report.
fn best_of<A, F>(
    reps: usize,
    mk: F,
    run: impl Fn(Vec<A>) -> Report<A::Output>,
) -> (Report<A::Output>, f64)
where
    A: Algorithm,
    F: Fn() -> Vec<A>,
{
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(|| run(mk()));
        best_ms = best_ms.min(ms);
        report = Some(r);
    }
    (report.unwrap(), best_ms)
}

/// The per-shard load statistics of the cost-balanced partition the
/// parallel engine uses on `g` at `threads`.
fn shard_load(g: &Graph, threads: usize) -> Vec<ShardLoad> {
    let sim = Simulator::congest(g);
    let costs: Vec<u64> = (0..g.num_nodes()).map(|i| sim.vertex_cost(i)).collect();
    ShardLoad::from_partition(&costs, &sim.shard_boundaries(threads))
}

/// Runs one workload on the sequential engine and on the parallel
/// engine at every swept thread count, and assembles the record.
fn bench_workload<A, F>(
    name: &str,
    graph_name: &str,
    g: &Graph,
    gate_threads: usize,
    reps: usize,
    mk: F,
) -> WorkloadRecord
where
    A: Algorithm + Send,
    A::Msg: Send,
    A::Output: PartialEq + std::fmt::Debug,
    F: Fn() -> Vec<A>,
{
    let (seq, seq_ms) = best_of(reps, &mk, |nodes| {
        Simulator::congest(g).run(nodes).expect("sequential run")
    });

    let mut engines = vec![EngineTiming {
        engine: "sequential".into(),
        threads: 1,
        wall_ms: seq_ms,
    }];
    let mut identical = true;
    let mut gate_ms = f64::NAN;
    let mut sweep: Vec<usize> = THREAD_SWEEP.to_vec();
    if !sweep.contains(&gate_threads) {
        sweep.push(gate_threads);
        sweep.sort_unstable();
    }
    for threads in sweep {
        let (par, par_ms) = best_of(reps, &mk, |nodes| {
            Simulator::congest(g)
                .run_parallel(nodes, threads)
                .expect("parallel run")
        });
        let same = par.outputs == seq.outputs && par.metrics == seq.metrics;
        if !same {
            eprintln!("DIVERGENCE in workload '{name}' at {threads} threads:");
            eprintln!("  sequential metrics: {}", seq.metrics);
            eprintln!("  parallel   metrics: {}", par.metrics);
            if par.outputs != seq.outputs {
                eprintln!("  outputs differ");
            }
        }
        identical &= same;
        if threads == gate_threads {
            gate_ms = par_ms;
        }
        engines.push(EngineTiming {
            engine: "parallel".into(),
            threads,
            wall_ms: par_ms,
        });
    }

    let Metrics {
        rounds,
        messages,
        bits,
        ..
    } = seq.metrics;
    WorkloadRecord {
        name: name.to_string(),
        graph: graph_name.to_string(),
        n: g.num_nodes(),
        m: g.num_edges(),
        rounds,
        messages,
        bits,
        peak_edge_bits: seq.metrics.peak_edge_bits(),
        congestion_p95: seq.metrics.congestion_percentile(0.95),
        engines,
        shard_load: shard_load(g, gate_threads),
        io: None,
        speedup: seq_ms / gate_ms,
        identical,
    }
}

/// Times FloodMax-to-full-termination on the lollipop under both
/// scheduling policies (sequential and parallel), asserting the four
/// runs are bit-identical, and reports full-sweep / active-set as the
/// record's `speedup`.
fn bench_tail_workload(g: &Graph, threads: usize, reps: usize) -> WorkloadRecord {
    let n = g.num_nodes();
    let mk = || {
        (0..n)
            .map(|i| FloodMax::new(NodeId::from_index(i)))
            .collect::<Vec<_>>()
    };
    let run = |scheduling: Scheduling, par: bool| {
        best_of(reps, &mk, |nodes| {
            let sim = Simulator::congest(g).with_scheduling(scheduling);
            if par {
                sim.run_parallel(nodes, threads).expect("tail run")
            } else {
                sim.run(nodes).expect("tail run")
            }
        })
    };
    let (full, full_ms) = run(Scheduling::FullSweep, false);
    let (active, active_ms) = run(Scheduling::ActiveSet, false);
    let (par_full, par_full_ms) = run(Scheduling::FullSweep, true);
    let (par_active, par_active_ms) = run(Scheduling::ActiveSet, true);

    let identical = [&active, &par_full, &par_active]
        .iter()
        .all(|r| r.outputs == full.outputs && r.metrics == full.metrics);
    if !identical {
        eprintln!("DIVERGENCE in workload 'floodmax_tail' (scheduling policies or engines)");
    }
    WorkloadRecord {
        name: "floodmax_tail".into(),
        graph: "gnm_lollipop".into(),
        n,
        m: g.num_edges(),
        rounds: full.metrics.rounds,
        messages: full.metrics.messages,
        bits: full.metrics.bits,
        peak_edge_bits: full.metrics.peak_edge_bits(),
        congestion_p95: full.metrics.congestion_percentile(0.95),
        engines: vec![
            EngineTiming {
                engine: "sequential_full_sweep".into(),
                threads: 1,
                wall_ms: full_ms,
            },
            EngineTiming {
                engine: "sequential_active_set".into(),
                threads: 1,
                wall_ms: active_ms,
            },
            EngineTiming {
                engine: "parallel_full_sweep".into(),
                threads,
                wall_ms: par_full_ms,
            },
            EngineTiming {
                engine: "parallel_active_set".into(),
                threads,
                wall_ms: par_active_ms,
            },
        ],
        shard_load: shard_load(g, threads),
        io: None,
        // For the tail record, speedup compares scheduling policies on
        // the sequential engine (full sweep / active set).
        speedup: full_ms / active_ms,
        identical,
    }
}

fn main() {
    let assert_speedup = std::env::args().any(|a| a == "--assert-speedup");
    let n = env_usize("BENCH_SIM_N", 60_000);
    let avg_deg = env_usize("BENCH_SIM_AVG_DEG", 8);
    let seed = env_u64("BENCH_SIM_SEED", 45_803);
    let threads = env_usize("BENCH_SIM_THREADS", 4);
    let reps = env_usize("BENCH_SIM_REPS", 2);
    let out = PathBuf::from(
        std::env::var("BENCH_SIM_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_string()),
    );
    let m = (n * avg_deg / 2).max(n.saturating_sub(1));

    println!("bench_sim: pinned instance n={n} m={m} seed={seed}, parallel sweep {THREAD_SWEEP:?} (gate at {threads}), best of {reps}");
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, gen_ms) = time_ms(|| generators::connected_gnm(n, m, &mut rng));
    let (offsets, targets) = g.csr();
    println!(
        "  graph generated in {gen_ms:.0} ms (CSR: {} offsets, {} directed entries)",
        offsets.len(),
        targets.len()
    );

    // Second pinned instance: Barabási–Albert preferential attachment —
    // the heavy-tailed counterpart of the uniform gnm instance, so the
    // exchange phase is exercised under skewed per-shard load (the
    // cost-balanced partition is what keeps its hubs from piling into
    // one shard).
    let ba_n = env_usize("BENCH_SIM_BA_N", n / 2);
    let ba_k = env_usize("BENCH_SIM_BA_K", 8);
    let (ba, ba_ms) = time_ms(|| generators::barabasi_albert(ba_n, ba_k, seed));
    println!(
        "  barabasi_albert({ba_n}, {ba_k}, {seed}) generated in {ba_ms:.0} ms ({} edges)",
        ba.num_edges()
    );

    // Quiescent-tail instance: a gnm blob with a long path attached (the
    // blob goes quiet early while the flood crawls down the path).
    let tail_blob_n = env_usize("BENCH_SIM_TAIL_BLOB_N", 30_000);
    let tail_blob_m = env_usize("BENCH_SIM_TAIL_BLOB_M", 60_000);
    let tail_len = env_usize("BENCH_SIM_TAIL_LEN", 3_000);
    let (lolli, lolli_ms) =
        time_ms(|| generators::gnm_lollipop(tail_blob_n, tail_blob_m, tail_len, seed));
    println!(
        "  gnm_lollipop(blob {tail_blob_n}/{tail_blob_m}, tail {tail_len}, {seed}) generated in {lolli_ms:.0} ms ({} edges)",
        lolli.num_edges()
    );

    let workloads = vec![
        bench_workload("floodmax", "connected_gnm", &g, threads, reps, || {
            (0..n)
                .map(|i| FloodMax::new(NodeId::from_index(i)))
                .collect()
        }),
        bench_workload("aggregate8", "connected_gnm", &g, threads, reps, || {
            (0..n)
                .map(|i| Aggregate {
                    acc: i as u64,
                    rounds_left: 8,
                })
                .collect()
        }),
        bench_workload("floodmax_ba", "barabasi_albert", &ba, threads, reps, || {
            (0..ba.num_nodes())
                .map(|i| FloodMax::new(NodeId::from_index(i)))
                .collect()
        }),
        bench_tail_workload(&lolli, threads, reps),
    ];

    for w in &workloads {
        let timings: Vec<String> = w
            .engines
            .iter()
            .map(|e| format!("{}({}) {:.0} ms", e.engine, e.threads, e.wall_ms))
            .collect();
        let loads: Vec<String> = w
            .shard_load
            .iter()
            .map(|l| format!("{}", l.total_cost))
            .collect();
        println!(
            "  {:>13}: {} rounds, {} msgs, p95 edge {} bits | {} | shard costs [{}] | speedup {:.2}x, identical: {}",
            w.name,
            w.rounds,
            w.messages,
            w.congestion_p95,
            timings.join(", "),
            loads.join(", "),
            w.speedup,
            w.identical
        );
    }

    let doc = SimBench {
        bench: "sim_round_engine".into(),
        seed,
        n,
        m: g.num_edges(),
        workloads,
    };
    doc.write_json(&out).expect("write BENCH_sim.json");
    println!("  wrote {}", out.display());

    if doc.workloads.iter().any(|w| !w.identical) {
        eprintln!("FAIL: parallel and sequential outputs diverged");
        std::process::exit(1);
    }
    println!("  engines bit-identical on every workload");

    if assert_speedup {
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cpus < threads.max(2) {
            // Fewer CPUs than shard threads: the workers oversubscribe the
            // cores and speedup is down to scheduler luck, so the gate
            // would be noise, not signal.
            println!(
                "  speedup assertion SKIPPED: {cpus} CPU(s) available for {threads} shard threads"
            );
        } else {
            // Per-workload floors at the gate thread count. The
            // heavy-tailed Barabási–Albert instance is gated too: with
            // cost-balanced shard boundaries its hubs no longer pile
            // into one shard, so near-sequential behavior there is a
            // regression, not an expectation.
            let floors = [
                ("floodmax", 1.05),
                ("aggregate8", 1.5),
                ("floodmax_ba", 1.2),
            ];
            let mut failed = false;
            for (name, floor) in floors {
                let w = doc
                    .workloads
                    .iter()
                    .find(|w| w.name == name)
                    .expect("gated workload present");
                if w.speedup < floor {
                    eprintln!(
                        "FAIL: '{name}' speedup {:.2}x below its {floor:.2}x floor at {threads} threads",
                        w.speedup
                    );
                    failed = true;
                } else {
                    println!(
                        "  speedup floor passed: '{name}' {:.2}x >= {floor:.2}x",
                        w.speedup
                    );
                }
            }
            if failed {
                std::process::exit(2);
            }
        }

        // Quiescent-tail gate: active-set scheduling must beat the full
        // sweep on the lollipop's long quiet tail.
        if cpus < 2 {
            println!("  tail scheduling assertion SKIPPED: single-CPU host");
        } else if let Some(tail) = doc.workloads.iter().find(|w| w.name == "floodmax_tail") {
            if tail.speedup < 1.3 {
                eprintln!(
                    "FAIL: active-set scheduling not >= 1.3x faster than full sweep on the quiescent tail ({:.2}x)",
                    tail.speedup
                );
                std::process::exit(2);
            }
            println!(
                "  tail scheduling assertion passed (active-set {:.2}x >= 1.3x over full sweep)",
                tail.speedup
            );
        }
    }
}
