//! E14 — CONGEST vs low-space MPC on the paper's `G²` workloads.
//!
//! Runs the paper's entry points (Theorem 1 `G²`-MVC, Theorem 28
//! `G²`-MDS) both on the CONGEST reference engine and through the
//! CONGEST-to-MPC adapter, asserting bit-identical results, and the
//! native MPC greedy 2-ruling set against its sequential oracle. The
//! table contrasts the two models' costs: CONGEST rounds/bits against
//! MPC machines/rounds/words/peak-memory under the enforced budget `S`.

use pga_bench::{banner, Table};
use pga_core::mds::congest_g2::g2_mds_congest;
use pga_core::mpc::{g2_mds_congest_mpc, g2_mvc_congest_mpc, LocalSolver};
use pga_core::mvc::congest::g2_mvc_congest;
use pga_graph::cover::{is_dominating_set_on_square, is_vertex_cover_on_square};
use pga_graph::generators;
use pga_graph::Graph;
use pga_mpc::{g2_ruling_set_mpc_auto, lex_first_g2_mis};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cases() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(14);
    vec![
        ("clique_chain(8,8)".into(), generators::clique_chain(8, 8)),
        ("grid(10,10)".into(), generators::grid(10, 10)),
        ("ba(300,3)".into(), generators::barabasi_albert(300, 3, 7)),
        (
            "gnm(300,900)".into(),
            generators::connected_gnm(300, 900, &mut rng),
        ),
    ]
}

fn main() {
    banner("E14: CONGEST vs low-space MPC (adapter + native ruling set)");

    banner("Theorem 1 — (1+ε) G²-MVC, ε = 0.5, through the MPC adapter");
    let t = Table::new(&[
        "graph",
        "n",
        "|cover|",
        "congest rds",
        "machines",
        "mpc words",
        "peak mem",
        "identical",
    ]);
    for (name, g) in &cases() {
        let reference = g2_mvc_congest(g, 0.5, LocalSolver::TwoApprox).unwrap();
        let mpc = g2_mvc_congest_mpc(g, 0.5, LocalSolver::TwoApprox).unwrap();
        let identical = mpc.result.cover == reference.cover
            && mpc.result.phase1_metrics == reference.phase1_metrics
            && mpc.result.phase2_metrics == reference.phase2_metrics;
        assert!(identical, "{name}: adapter diverged from CONGEST engine");
        assert!(is_vertex_cover_on_square(g, &mpc.result.cover));
        t.row(&[
            name.clone(),
            g.num_nodes().to_string(),
            mpc.result.size().to_string(),
            reference.total_rounds().to_string(),
            mpc.machines.to_string(),
            mpc.mpc_metrics.words.to_string(),
            mpc.mpc_metrics.peak_memory_words.to_string(),
            identical.to_string(),
        ]);
    }

    banner("Theorem 28 — O(log Δ) G²-MDS, through the MPC adapter");
    let t = Table::new(&[
        "graph",
        "n",
        "|DS|",
        "congest rds",
        "machines",
        "mpc words",
        "peak mem",
        "identical",
    ]);
    for (name, g) in &cases() {
        let reference = g2_mds_congest(g, 6, 42).unwrap();
        let mpc = g2_mds_congest_mpc(g, 6, 42).unwrap();
        let identical = mpc.result.dominating_set == reference.dominating_set
            && mpc.result.metrics == reference.metrics;
        assert!(identical, "{name}: adapter diverged from CONGEST engine");
        assert!(is_dominating_set_on_square(g, &mpc.result.dominating_set));
        t.row(&[
            name.clone(),
            g.num_nodes().to_string(),
            mpc.result.size().to_string(),
            reference.metrics.rounds.to_string(),
            mpc.machines.to_string(),
            mpc.mpc_metrics.words.to_string(),
            mpc.mpc_metrics.peak_memory_words.to_string(),
            identical.to_string(),
        ]);
    }

    banner("Native MPC — greedy 2-ruling set of G² (Pai–Pemmaraju style)");
    let t = Table::new(&[
        "graph",
        "n",
        "|R|",
        "mpc rounds",
        "machines",
        "mpc words",
        "peak mem",
        "identical",
    ]);
    for (name, g) in &cases() {
        let result = g2_ruling_set_mpc_auto(g).unwrap();
        let identical = result.in_r == lex_first_g2_mis(g);
        assert!(identical, "{name}: ruling set diverged from oracle");
        assert!(is_dominating_set_on_square(g, &result.in_r));
        t.row(&[
            name.clone(),
            g.num_nodes().to_string(),
            result.size().to_string(),
            result.mpc.rounds.to_string(),
            result.machines.to_string(),
            result.mpc.words.to_string(),
            result.mpc.peak_memory_words.to_string(),
            identical.to_string(),
        ]);
    }

    println!("\nshape check: every MPC execution reproduced its reference bit for bit");
    println!("while staying within the enforced per-machine budget S; the adapter's");
    println!("MPC round count equals the CONGEST round count (1 round ↔ 1 round),");
    println!("and the native ruling set pays 4 MPC rounds per greedy iteration.");
}
