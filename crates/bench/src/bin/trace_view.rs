//! `trace_view` — analysis CLI for the kernel's JSONL telemetry traces.
//!
//! Reads a trace produced by `PGA_TRACE=<path>` (see the Observability
//! section of the workspace README) and renders, per run: the top-k
//! hottest rounds by wall time, the per-round shard-imbalance timeline,
//! the log-bucket message-size histogram (p50/p90/max), and — for runs
//! under the reliable executor — the retransmission/ack/dead-link
//! totals plus a per-round retransmit timeline. Modes:
//!
//! ```text
//! trace_view <trace.jsonl> [--topk K]    summaries (default K = 10)
//! trace_view --validate <trace.jsonl>    schema check; exit 1 on the
//!                                        first invalid line
//! trace_view --chrome <out.json> <trace.jsonl>
//!                                        chrome://tracing export
//! trace_view --assert-overhead [RATIO]   probe-overhead gate: run a
//!                                        pinned workload under NoopProbe
//!                                        and RecordingProbe, exit 1 if
//!                                        telemetry costs more than
//!                                        RATIO x (default 2.0) or the
//!                                        outputs diverge
//! ```

use pga_bench::trace::{chrome_trace, parse_trace, TraceRun};
use pga_bench::{banner, f3, Table};
use pga_congest::primitives::FloodMax;
use pga_congest::{NoopProbe, RecordingProbe, RunConfig, Simulator};
use pga_graph::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_view <trace.jsonl> [--topk K]\n\
         \x20      trace_view --validate <trace.jsonl>\n\
         \x20      trace_view --chrome <out.json> <trace.jsonl>\n\
         \x20      trace_view --assert-overhead [MAX_RATIO]"
    );
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Vec<TraceRun>, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("trace_view: cannot read {path}: {e}");
        ExitCode::FAILURE
    })?;
    parse_trace(&text).map_err(|(line, msg)| {
        eprintln!("trace_view: {path}:{line}: {msg}");
        ExitCode::FAILURE
    })
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    "#".repeat(n)
}

fn summarize(runs: &[TraceRun], topk: usize) {
    for (ri, run) in runs.iter().enumerate() {
        banner(&format!(
            "run {} [{}]: {} actors, {} shards, {} rounds, {} ms{}",
            ri + 1,
            run.label,
            run.actors,
            run.shards,
            run.rounds.len(),
            ms(run.total_wall_ns()),
            if run.end.is_some() {
                String::new()
            } else {
                " (aborted: no run_end)".to_string()
            }
        ));

        if run.rounds.is_empty() {
            println!("(no round events)");
            continue;
        }

        println!("\ntop-{} hottest rounds:", topk.min(run.rounds.len()));
        let t = Table::new(&[
            "round", "wall_ms", "exch_ms", "messages", "volume", "active",
        ]);
        for r in run.hottest(topk) {
            t.row(&[
                r.round.to_string(),
                ms(r.wall_ns),
                ms(r.exchange_ns),
                r.messages.to_string(),
                r.volume.to_string(),
                r.active.to_string(),
            ]);
        }

        let with_shards = run.rounds.iter().filter(|r| r.shards.len() >= 2).count();
        if with_shards > 0 {
            println!("\nshard-imbalance timeline (max/mean - 1 over shard walls):");
            let t = Table::new(&["round", "imbalance", "profile"]);
            for r in &run.rounds {
                if r.shards.len() < 2 {
                    continue;
                }
                let imb = r.shard_imbalance();
                t.row(&[r.round.to_string(), f3(imb), bar(imb, 40)]);
            }
        }

        let hist = run.size_hist();
        if !hist.is_empty() {
            println!(
                "\nmessage sizes ({} observations, log buckets): p50 <= {}, p90 <= {}, max <= {}",
                hist.count(),
                hist.percentile(50.0),
                hist.percentile(90.0),
                hist.max_value()
            );
        }

        let faults = run.total_faults();
        if faults > 0 {
            println!("\nfault events: {faults} across the run");
        }

        let (retransmitted, acks, dead_links) = run.arq_totals();
        if retransmitted + acks + dead_links > 0 {
            println!(
                "reliable executor: {retransmitted} retransmissions, {acks} ack frames, \
                 {dead_links} dead link(s)"
            );
            let peak = run
                .rounds
                .iter()
                .filter_map(|r| r.fault.map(|f| f.retransmitted))
                .max()
                .unwrap_or(0);
            if peak > 0 {
                println!("\nretransmit timeline (per round):");
                let t = Table::new(&["round", "retransmits", "acks", "dead", "profile"]);
                for r in &run.rounds {
                    let Some(f) = r.fault.filter(|f| f.retransmitted + f.dead_links > 0) else {
                        continue;
                    };
                    t.row(&[
                        r.round.to_string(),
                        f.retransmitted.to_string(),
                        f.acks.to_string(),
                        f.dead_links.to_string(),
                        bar(f.retransmitted as f64 / peak as f64, 40),
                    ]);
                }
            }
        }
    }
}

/// The pinned workload of the overhead gate: FloodMax leader election on
/// a seeded connected G(n, m). Big enough that a round does real work,
/// small enough for CI.
fn overhead_workload() -> (pga_graph::Graph, usize) {
    let mut rng = StdRng::seed_from_u64(0x9a27);
    (generators::connected_gnm(1500, 6000, &mut rng), 1500)
}

fn assert_overhead(max_ratio: f64) -> ExitCode {
    let (g, n) = overhead_workload();
    let sim = Simulator::congest(&g);
    let cfg = RunConfig::new();
    let nodes = || -> Vec<FloodMax> {
        (0..n)
            .map(|i| FloodMax::new(NodeId::from_index(i)))
            .collect()
    };

    const REPS: usize = 5;
    let mut best_noop = u64::MAX;
    let mut best_rec = u64::MAX;
    let mut outputs_noop = None;
    let mut outputs_rec = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let report = sim
            .run_cfg_probed(nodes(), &cfg, &NoopProbe)
            .expect("noop run");
        best_noop = best_noop.min(t.elapsed().as_nanos() as u64);
        outputs_noop = Some(report.outputs);

        let probe = RecordingProbe::new();
        let t = Instant::now();
        let report = sim
            .run_cfg_probed(nodes(), &cfg, &probe)
            .expect("probed run");
        best_rec = best_rec.min(t.elapsed().as_nanos() as u64);
        outputs_rec = Some(report.outputs);
        let telemetry = probe.into_telemetry();
        assert!(telemetry.completed, "probed run must complete");
        assert_eq!(
            telemetry.rounds.len() as u64,
            telemetry.rounds.last().map_or(0, |r| r.round as u64 + 1)
        );
    }

    if outputs_noop != outputs_rec {
        eprintln!("trace_view: OVERHEAD GATE FAILED: probe changed the outputs");
        return ExitCode::FAILURE;
    }

    // Noise floor: below this the measurement is dominated by timer and
    // scheduler jitter, and the ratio gate would flake.
    const FLOOR_NS: u64 = 200_000;
    let denom = best_noop.max(FLOOR_NS);
    let ratio = best_rec as f64 / denom as f64;
    println!(
        "probe overhead: noop best-of-{REPS} {} ms, recording best-of-{REPS} {} ms, ratio {}",
        ms(best_noop),
        ms(best_rec),
        f3(ratio)
    );
    if ratio > max_ratio {
        eprintln!(
            "trace_view: OVERHEAD GATE FAILED: telemetry costs {}x > {}x allowed",
            f3(ratio),
            f3(max_ratio)
        );
        return ExitCode::FAILURE;
    }
    println!("overhead gate passed (limit {}x)", f3(max_ratio));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--validate") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match load(path) {
                Ok(runs) => {
                    let rounds: usize = runs.iter().map(|r| r.rounds.len()).sum();
                    println!("{path}: valid ({} runs, {rounds} round events)", runs.len());
                    ExitCode::SUCCESS
                }
                Err(code) => code,
            }
        }
        Some("--chrome") => {
            let (Some(out), Some(path)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let runs = match load(path) {
                Ok(runs) => runs,
                Err(code) => return code,
            };
            let doc = chrome_trace(&runs);
            if let Err(e) = std::fs::write(out, doc) {
                eprintln!("trace_view: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote chrome://tracing export for {} runs to {out}",
                runs.len()
            );
            ExitCode::SUCCESS
        }
        Some("--assert-overhead") => {
            let max_ratio = match args.get(1) {
                None => 2.0,
                Some(s) => match s.parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                },
            };
            assert_overhead(max_ratio)
        }
        Some(path) if !path.starts_with("--") => {
            let topk = match args.get(1).map(String::as_str) {
                None => 10,
                Some("--topk") => match args.get(2).and_then(|s| s.parse().ok()) {
                    Some(k) => k,
                    None => return usage(),
                },
                Some(_) => return usage(),
            };
            match load(path) {
                Ok(runs) => {
                    summarize(&runs, topk);
                    ExitCode::SUCCESS
                }
                Err(code) => code,
            }
        }
        _ => usage(),
    }
}
