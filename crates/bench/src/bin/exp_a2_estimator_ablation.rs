//! A2 — Ablation: estimator precision in Theorem 28.
//!
//! The sample count `r = sample_factor · ⌈log₂ n⌉` trades rounds
//! (each phase costs `4r + 10`) against the quality of the density and
//! vote estimates. Too few samples make candidates misjudge their
//! coverage; the dominating set grows. This sweep quantifies the knob the
//! paper hides inside `Θ(log n)`.

use pga_bench::exp_cfg;
use pga_bench::{banner, f3, Table};
use pga_core::mds::congest_g2::g2_mds_congest_cfg;
use pga_exact::mds::mds_size;
use pga_graph::cover::is_dominating_set_on_square;
use pga_graph::generators;
use pga_graph::power::square;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("A2: Theorem 28 sample-factor ablation (gnp n = 30, 3 seeds each)");
    let t = Table::new(&[
        "factor",
        "samples",
        "mean |DS|",
        "opt",
        "mean rounds",
        "rounds/phase",
    ]);

    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::connected_gnp(30, 0.1, &mut rng);
    let opt = mds_size(&square(&g));

    for &factor in &[2usize, 4, 8, 16] {
        let mut sizes = Vec::new();
        let mut rounds = Vec::new();
        let mut samples = 0;
        for seed in 0..3u64 {
            let r = g2_mds_congest_cfg(&g, factor, seed, &exp_cfg()).expect("simulation");
            assert!(is_dominating_set_on_square(&g, &r.dominating_set));
            sizes.push(r.size() as f64);
            rounds.push(r.metrics.rounds as f64);
            samples = r.samples_per_phase;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        t.row(&[
            factor.to_string(),
            samples.to_string(),
            f3(mean(&sizes)),
            opt.to_string(),
            f3(mean(&rounds)),
            (4 * samples + 10).to_string(),
        ]);
    }

    println!("\nreading: quality saturates around factor 8 (the Θ(log n) constant the");
    println!("paper's w.h.p. analysis needs); rounds grow linearly in the factor.");
}
