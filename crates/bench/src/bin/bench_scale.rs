//! Scale gate: a million-vertex instance through the full compressed
//! message plane — streamed edge-list I/O, varint-delta compact CSR,
//! and the packed-codec exchange next to the enum exchange.
//!
//! Runs on one pinned `connected_gnm` instance (default n = 10⁶,
//! m = 4·10⁶ — override with `BENCH_SCALE_N` / `BENCH_SCALE_AVG_DEG`
//! for CI-sized smoke runs) and:
//!
//! * round-trips the instance through the streaming edge-list writer and
//!   reader (`pga_graph::io::EdgeListReader`), asserting the reloaded
//!   CSR is identical and recording file size and wall times,
//! * builds the varint-delta `CompactGraph`, asserts its exact
//!   round-trip back to the plain CSR, and records both heap sizes,
//! * runs two message-heavy workloads (FloodMax and a fixed-horizon
//!   aggregation) on the sequential engine, the 4-thread enum-plane
//!   engine, and the 4-thread packed-codec engine, asserting all three
//!   are **bit-identical** (outputs + full metrics; exit code 1
//!   otherwise) and recording the wall times as `sequential` /
//!   `parallel` / `parallel_codec` engine entries,
//! * splices the records into `BENCH_sim.json` next to `bench_sim`'s
//!   round-engine workloads (replacing any previous `scale_*` entries),
//! * with `--assert-codec-parity`, additionally requires the codec
//!   plane to be no slower than the enum plane at the gate thread count
//!   (within 10%; exit code 2 otherwise; skipped with a notice when the
//!   host has fewer CPUs than gate threads, where wall times are
//!   scheduler noise).
//!
//! Environment overrides: `BENCH_SCALE_N`, `BENCH_SCALE_AVG_DEG`,
//! `BENCH_SCALE_SEED`, `BENCH_SCALE_THREADS`, `BENCH_SCALE_REPS`,
//! `BENCH_SCALE_OUT` (defaults to `BENCH_sim.json`).

use pga_bench::harness::{
    env_u64, env_usize, merge_scale_workloads, time_ms, EngineTiming, IoStats, SimBench,
    WorkloadRecord,
};
use pga_congest::primitives::FloodMax;
use pga_congest::{Algorithm, Ctx, MsgCodec, MsgSize, Report, RunConfig, Simulator};
use pga_graph::compact::CompactGraph;
use pga_graph::{generators, io, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A 64-bit payload, charged 64 bits and packed as itself.
#[derive(Clone)]
struct Word(u64);

impl MsgSize for Word {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64
    }
}

impl MsgCodec for Word {
    type Word = u64;

    fn encode(&self) -> u64 {
        self.0
    }

    fn decode(word: u64) -> Self {
        Word(word)
    }
}

/// Fixed-horizon neighborhood aggregation (the `bench_sim` workload,
/// codec-capable): uniform per-round load on every edge, with mixing
/// that surfaces any delivery-order deviation in the outputs.
struct Aggregate {
    acc: u64,
    rounds_left: usize,
}

impl Algorithm for Aggregate {
    type Msg = Word;
    type Output = u64;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Word)]) -> Vec<(NodeId, Word)> {
        for (from, m) in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(m.0 ^ from.0 as u64);
        }
        if self.rounds_left == 0 {
            return Vec::new();
        }
        self.rounds_left -= 1;
        ctx.graph_neighbors
            .iter()
            .map(|&v| (v, Word(self.acc)))
            .collect()
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.rounds_left == 0
    }

    fn output(&self, _ctx: &Ctx) -> u64 {
        self.acc
    }
}

/// Best-of-`reps` wall time under one `RunConfig`.
fn best_of<A, F>(g: &Graph, reps: usize, mk: &F, cfg: &RunConfig) -> (Report<A::Output>, f64)
where
    A: Algorithm + Send,
    A::Msg: MsgCodec + Send,
    F: Fn() -> Vec<A>,
{
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(|| Simulator::congest(g).run_cfg(mk(), cfg).expect("scale run"));
        best_ms = best_ms.min(ms);
        report = Some(r);
    }
    (report.unwrap(), best_ms)
}

/// Runs one workload on the sequential engine, the enum-plane parallel
/// engine, and the packed-codec parallel engine, asserting bit-identity.
fn scale_workload<A, F>(
    name: &str,
    g: &Graph,
    threads: usize,
    reps: usize,
    io_stats: Option<IoStats>,
    mk: F,
) -> WorkloadRecord
where
    A: Algorithm + Send,
    A::Msg: MsgCodec + Send,
    A::Output: PartialEq,
    F: Fn() -> Vec<A>,
{
    let (seq, seq_ms) = best_of(g, reps, &mk, &RunConfig::new());
    let (enum_par, enum_ms) = best_of(g, reps, &mk, &RunConfig::new().parallel(threads));
    let (codec_par, codec_ms) = best_of(
        g,
        reps,
        &mk,
        &RunConfig::new().parallel(threads).codec(true),
    );

    let mut identical = true;
    for (plane, r) in [("enum", &enum_par), ("codec", &codec_par)] {
        let same = r.outputs == seq.outputs && r.metrics == seq.metrics;
        if !same {
            eprintln!("DIVERGENCE in workload '{name}': {plane} plane at {threads} threads");
            eprintln!("  sequential metrics: {}", seq.metrics);
            eprintln!("  {plane}      metrics: {}", r.metrics);
        }
        identical &= same;
    }

    WorkloadRecord {
        name: name.to_string(),
        graph: "connected_gnm".into(),
        n: g.num_nodes(),
        m: g.num_edges(),
        rounds: seq.metrics.rounds,
        messages: seq.metrics.messages,
        bits: seq.metrics.bits,
        peak_edge_bits: seq.metrics.peak_edge_bits(),
        congestion_p95: seq.metrics.congestion_percentile(0.95),
        engines: vec![
            EngineTiming {
                engine: "sequential".into(),
                threads: 1,
                wall_ms: seq_ms,
            },
            EngineTiming {
                engine: "parallel".into(),
                threads,
                wall_ms: enum_ms,
            },
            EngineTiming {
                engine: "parallel_codec".into(),
                threads,
                wall_ms: codec_ms,
            },
        ],
        shard_load: Vec::new(),
        io: io_stats,
        speedup: seq_ms / codec_ms,
        identical,
    }
}

/// Streams the instance to disk and back, asserting an exact round
/// trip, and measures the varint-delta compact CSR against the plain
/// one (also an exact round trip).
fn io_and_compact_stats(g: &Graph) -> IoStats {
    let path = std::env::temp_dir().join(format!(
        "pga_bench_scale_{}_{}.edges",
        g.num_nodes(),
        g.num_edges()
    ));
    let (wres, write_ms) = time_ms(|| io::write_edge_list(&path, g));
    wres.expect("streamed edge-list write");
    let file_bytes = std::fs::metadata(&path).expect("stat edge list").len();
    let (reloaded, read_ms) = time_ms(|| io::read_edge_list(&path).expect("streamed read"));
    assert!(reloaded == *g, "streamed round trip must be exact");
    let _ = std::fs::remove_file(&path);

    let (offsets, targets) = g.csr();
    let plain_bytes = (std::mem::size_of_val(offsets) + std::mem::size_of_val(targets)) as u64;
    let compact = CompactGraph::from_graph(g);
    assert!(
        compact.to_graph() == *g,
        "compact CSR round trip must be exact"
    );
    IoStats {
        file_bytes,
        write_ms,
        read_ms,
        plain_bytes,
        compact_bytes: compact.heap_bytes() as u64,
    }
}

fn main() {
    let assert_parity = std::env::args().any(|a| a == "--assert-codec-parity");
    let n = env_usize("BENCH_SCALE_N", 1_000_000);
    let avg_deg = env_usize("BENCH_SCALE_AVG_DEG", 8);
    let seed = env_u64("BENCH_SCALE_SEED", 45_803);
    let threads = env_usize("BENCH_SCALE_THREADS", 4);
    let reps = env_usize("BENCH_SCALE_REPS", 1);
    let out = PathBuf::from(
        std::env::var("BENCH_SCALE_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_string()),
    );
    let m = (n * avg_deg / 2).max(n.saturating_sub(1));

    println!(
        "bench_scale: pinned instance n={n} m={m} seed={seed}, codec gate at {threads} threads, best of {reps}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, gen_ms) = time_ms(|| generators::connected_gnm(n, m, &mut rng));
    println!("  graph generated in {gen_ms:.0} ms");

    let io_stats = io_and_compact_stats(&g);
    println!(
        "  streamed I/O: {} bytes written in {:.0} ms, read back in {:.0} ms (exact round trip)",
        io_stats.file_bytes, io_stats.write_ms, io_stats.read_ms
    );
    println!(
        "  compact CSR: {} -> {} heap bytes ({:.1}% of plain, exact round trip)",
        io_stats.plain_bytes,
        io_stats.compact_bytes,
        100.0 * io_stats.compact_bytes as f64 / io_stats.plain_bytes as f64
    );

    let workloads = vec![
        scale_workload("scale_floodmax", &g, threads, reps, Some(io_stats), || {
            (0..n)
                .map(|i| FloodMax::new(NodeId::from_index(i)))
                .collect()
        }),
        scale_workload("scale_aggregate4", &g, threads, reps, None, || {
            (0..n)
                .map(|i| Aggregate {
                    acc: i as u64,
                    rounds_left: 4,
                })
                .collect()
        }),
    ];

    for w in &workloads {
        let timings: Vec<String> = w
            .engines
            .iter()
            .map(|e| format!("{}({}) {:.0} ms", e.engine, e.threads, e.wall_ms))
            .collect();
        println!(
            "  {:>16}: {} rounds, {} msgs, {} bits | {} | identical: {}",
            w.name,
            w.rounds,
            w.messages,
            w.bits,
            timings.join(", "),
            w.identical
        );
    }

    let doc = SimBench {
        bench: "sim_scale".into(),
        seed,
        n,
        m: g.num_edges(),
        workloads,
    };
    let existing = std::fs::read_to_string(&out).ok();
    let merged = merge_scale_workloads(existing.as_deref(), &doc);
    std::fs::write(&out, merged).expect("write BENCH_sim.json");
    println!("  wrote {}", out.display());

    if doc.workloads.iter().any(|w| !w.identical) {
        eprintln!("FAIL: codec or enum plane diverged from the sequential reference");
        std::process::exit(1);
    }
    println!("  sequential / enum / codec planes bit-identical on every workload");

    if assert_parity {
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cpus < threads {
            println!(
                "  codec parity assertion SKIPPED: {cpus} CPU(s) available for {threads} shard threads"
            );
            return;
        }
        let mut failed = false;
        for w in &doc.workloads {
            let wall = |name: &str| {
                w.engines
                    .iter()
                    .find(|e| e.engine == name)
                    .map(|e| e.wall_ms)
                    .expect("engine entry present")
            };
            let (enum_ms, codec_ms) = (wall("parallel"), wall("parallel_codec"));
            if codec_ms > enum_ms * 1.10 {
                eprintln!(
                    "FAIL: '{}' codec plane {codec_ms:.0} ms vs enum plane {enum_ms:.0} ms at {threads} threads",
                    w.name
                );
                failed = true;
            } else {
                println!(
                    "  codec parity passed: '{}' {codec_ms:.0} ms <= 1.10 x {enum_ms:.0} ms",
                    w.name
                );
            }
        }
        if failed {
            std::process::exit(2);
        }
    }
}
