//! E3 — Corollary 10 and Theorem 11: CONGESTED CLIQUE round counts.
//!
//! The deterministic variant processes one 2-hop-locally-maximal winner
//! at a time — `O(εn)` iterations in the worst case; the randomized
//! voting variant lets *every* candidate with enough votes fire at once —
//! `O(log n)` iterations w.h.p. The separating workload is a caterpillar
//! whose spine ids increase monotonically: each spine hub is eligible,
//! but only the top of the id gradient is a 2-hop local maximum, so the
//! deterministic Phase I serializes while voting harvests all hubs in a
//! round or two.

use pga_bench::exp_cfg;
use pga_bench::{banner, f3, Table};
use pga_core::mvc::clique_det::g2_mvc_clique_det_cfg;
use pga_core::mvc::clique_rand::g2_mvc_clique_rand_cfg;
use pga_core::mvc::congest::LocalSolver;
use pga_graph::cover::is_vertex_cover_on_square;
use pga_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E3: CONGESTED CLIQUE — caterpillar(m spine hubs, 20 legs each), ε = 1/2");
    let eps = 0.5;
    let t = Table::new(&[
        "spine",
        "n",
        "det iters",
        "rand iters",
        "det rounds",
        "rand rounds",
        "log2 n",
    ]);

    for &m in &[5usize, 10, 20, 40] {
        let g = generators::caterpillar(m, 20);
        let n = g.num_nodes();
        let det = g2_mvc_clique_det_cfg(&g, eps, LocalSolver::FiveThirds, &exp_cfg()).expect("det");
        assert!(is_vertex_cover_on_square(&g, &det.cover));
        let rnd =
            g2_mvc_clique_rand_cfg(&g, eps, LocalSolver::FiveThirds, 7, &exp_cfg()).expect("rand");
        assert!(is_vertex_cover_on_square(&g, &rnd.cover));
        t.row(&[
            m.to_string(),
            n.to_string(),
            det.phase1_metrics.rounds.div_ceil(4).to_string(),
            rnd.phase1_metrics.rounds.div_ceil(4).to_string(),
            det.total_rounds().to_string(),
            rnd.total_rounds().to_string(),
            f3((n as f64).log2()),
        ]);
    }

    banner("E3b: dense G(n, 1/2) — few iterations for both (one winner covers half)");
    let t = Table::new(&["n", "det iters", "rand iters", "det cover", "rand cover"]);
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::connected_gnp(n, 0.5, &mut rng);
        let det =
            g2_mvc_clique_det_cfg(&g, 0.25, LocalSolver::FiveThirds, &exp_cfg()).expect("det");
        let rnd =
            g2_mvc_clique_rand_cfg(&g, 0.25, LocalSolver::FiveThirds, 3, &exp_cfg()).expect("rand");
        t.row(&[
            n.to_string(),
            det.phase1_metrics.rounds.div_ceil(4).to_string(),
            rnd.phase1_metrics.rounds.div_ceil(4).to_string(),
            det.size().to_string(),
            rnd.size().to_string(),
        ]);
    }

    banner("E3c: G² materialization — relay Phase I vs BMM-prep direct Phase I (det)");
    let t = Table::new(&[
        "instance",
        "n",
        "relay iters",
        "bmm iters",
        "relay p1 rounds",
        "bmm p1 rounds",
        "relay p1 kbit",
        "bmm p1 kbit",
        "cover ==",
    ]);
    let instances: Vec<(&str, pga_graph::Graph)> = vec![
        ("caterpillar(20,20)", generators::caterpillar(20, 20)),
        ("clique_chain(6,8)", generators::clique_chain(6, 8)),
        (
            "sbm(256,8)",
            generators::planted_partition(256, 8, 0.35, 0.01, 45_803),
        ),
        (
            "sbm(512,16)",
            generators::planted_partition(512, 16, 0.30, 0.005, 45_803),
        ),
    ];
    for (name, g) in &instances {
        let n = g.num_nodes();
        let relay =
            g2_mvc_clique_det_cfg(g, eps, LocalSolver::FiveThirds, &exp_cfg()).expect("det");
        let bmm = g2_mvc_clique_det_cfg(g, eps, LocalSolver::FiveThirds, &exp_cfg().bmm_prep())
            .expect("det bmm");
        // The acceptance bar: the BMM-prepared pipeline must induce the
        // relay pipeline's cover bit for bit.
        assert_eq!(relay.cover, bmm.cover, "{name}: covers diverged");
        assert!(is_vertex_cover_on_square(g, &bmm.cover));
        // Relay iterations are 4 rounds each (Cand, relay, JoinS, LeftR);
        // direct iterations are 3 (the one-hop relay round is gone). The
        // BMM Phase I round count includes the O(log n) clique-BMM
        // preamble that materialized the G² rows.
        t.row(&[
            (*name).to_string(),
            n.to_string(),
            relay.phase1_metrics.rounds.div_ceil(4).to_string(),
            bmm.phase1_metrics.rounds.div_ceil(3).to_string(),
            relay.phase1_metrics.rounds.to_string(),
            bmm.phase1_metrics.rounds.to_string(),
            (relay.phase1_metrics.bits / 1000).to_string(),
            (bmm.phase1_metrics.bits / 1000).to_string(),
            "yes".to_string(),
        ]);
    }

    println!("\nshape check: on the id-gradient caterpillar the deterministic Phase I");
    println!("iterations grow ~linearly with the spine (Θ(εn) worst case), while the");
    println!("voting scheme stays O(1)–O(log n) — Theorem 11's speedup. Phase II is");
    println!("O(1/ε) in the clique for both (Lemma 9). E3c: materializing G² rows");
    println!("once via clique BMM removes the per-iteration relay round (4 -> 3");
    println!("rounds/iteration) and the MaxCand forwarding storm, at the price of a");
    println!("one-shot O(log n)-round row broadcast — same cover, bit for bit.");
}
