//! E6 — Lemma 29: concentration of the 2-hop exponential estimator.
//!
//! Sweeps the sample count `r` and reports the maximum and mean relative
//! error of `d̃_v` against the exact `|N²[v] ∩ U|`, plus the round cost
//! `2r + 1`. Lemma 29 promises `(1 ± ε)` with `r = Θ(log n / ε²)`.

use pga_bench::exp_cfg;
use pga_bench::{banner, f3, Table};
use pga_core::mds::estimator::{estimate_two_hop_sizes_cfg, exact_two_hop_sizes};
use pga_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E6: Lemma 29 — estimator error vs sample count r (n = 60)");
    let t = Table::new(&["family", "r", "rounds", "max rel err", "mean rel err"]);

    let mut rng = StdRng::seed_from_u64(29);
    let cases = vec![
        ("star".to_string(), generators::star(60)),
        ("cycle".to_string(), generators::cycle(60)),
        (
            "gnp(60,.06)".to_string(),
            generators::connected_gnp(60, 0.06, &mut rng),
        ),
    ];

    for (name, g) in &cases {
        let n = g.num_nodes();
        let in_u: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let exact = exact_two_hop_sizes(g, &in_u);
        for &r in &[16usize, 64, 256, 1024] {
            let est = estimate_two_hop_sizes_cfg(g, &in_u, r, 7, &exp_cfg());
            let mut max_err: f64 = 0.0;
            let mut sum_err = 0.0;
            let mut cnt = 0;
            for v in 0..n {
                let x = exact[v] as f64;
                if x == 0.0 {
                    assert_eq!(est[v], 0.0, "zero sets must be detected exactly");
                    continue;
                }
                let e = (est[v] - x).abs() / x;
                max_err = max_err.max(e);
                sum_err += e;
                cnt += 1;
            }
            t.row(&[
                name.clone(),
                r.to_string(),
                (2 * r + 1).to_string(),
                f3(max_err),
                f3(sum_err / cnt as f64),
            ]);
        }
    }

    println!("\nshape check: error shrinks like 1/√r — the Lemma 29/30 concentration;");
    println!("r = Θ(log n) samples already land within the constant ε the paper needs.");
}
