//! Bench-smoke for the low-space MPC subsystem.
//!
//! Runs the CONGEST-to-MPC adapter and the native ruling set on two
//! pinned seeded instances (a uniform `connected_gnm` and a heavy-tailed
//! `barabasi_albert`), sweeping the MPC engine over thread counts
//! {1, 2, 4, 8}, then:
//!
//! * verifies every engine run of the adapter reproduced the sequential
//!   CONGEST engine **bit-identically** (outputs and metrics) and every
//!   engine run of the native ruling set matched its sequential oracle —
//!   exit code 1 on any divergence (this is CI's correctness gate),
//! * verifies the enforced budgets were respected (`peak_memory_words`
//!   and `peak_round_io_words` at most `S` — the engine would have
//!   errored otherwise),
//! * writes the machine-readable `BENCH_mpc.json` artifact
//!   (schema: `pga_bench::harness::MpcBench`), whose `engines` arrays
//!   record the scaling trajectory across thread counts.
//!
//! Environment overrides: `BENCH_MPC_N` (vertices), `BENCH_MPC_AVG_DEG`
//! (average degree), `BENCH_MPC_SEED`, `BENCH_MPC_BA_N` / `BENCH_MPC_BA_K`
//! (the Barabási–Albert instance), `BENCH_MPC_OUT` (artifact path).

use pga_bench::harness::{env_u64, env_usize, time_ms, EngineTiming, MpcBench, MpcWorkloadRecord};
use pga_congest::primitives::FloodMax;
use pga_congest::Simulator;
use pga_graph::{generators, Graph, NodeId};
use pga_mpc::{
    g2_ruling_set_mpc, lex_first_g2_mis, recommended_memory_words,
    recommended_ruling_set_memory_words, CongestOnMpc, Engine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// The parallel thread counts every MPC workload sweeps (next to the
/// sequential engine, which is the `threads = 1` point).
const THREAD_SWEEP: [usize; 3] = [2, 4, 8];

fn floodmax_states(n: usize) -> Vec<FloodMax> {
    (0..n)
        .map(|i| FloodMax::new(NodeId::from_index(i)))
        .collect()
}

/// FloodMax through the adapter (at every swept thread count) vs the
/// sequential CONGEST engine.
fn adapter_workload(name: &str, graph: &str, g: &Graph, seed: u64) -> MpcWorkloadRecord {
    let n = g.num_nodes();
    let memory_words = recommended_memory_words(g, pga_congest::default_bandwidth_bits(n));
    let (reference, ref_ms) = time_ms(|| {
        Simulator::congest(g)
            .run(floodmax_states(n))
            .expect("congest reference run")
    });
    let (adapter, mpc_ms) = time_ms(|| {
        CongestOnMpc::congest(g)
            .with_memory_words(memory_words)
            .run(floodmax_states(n))
            .expect("adapter run")
    });
    let mut identical =
        adapter.outputs == reference.outputs && adapter.congest == reference.metrics;
    let mut engines = vec![EngineTiming {
        engine: "mpc_sequential".into(),
        threads: 1,
        wall_ms: mpc_ms,
    }];
    for threads in THREAD_SWEEP {
        let (par, par_ms) = time_ms(|| {
            CongestOnMpc::congest(g)
                .with_memory_words(memory_words)
                .run_with(floodmax_states(n), Engine::Parallel { threads })
                .expect("parallel adapter run")
        });
        identical &= par.outputs == reference.outputs
            && par.congest == reference.metrics
            && par.mpc == adapter.mpc
            && par.machines == adapter.machines;
        engines.push(EngineTiming {
            engine: "mpc_parallel".into(),
            threads,
            wall_ms: par_ms,
        });
    }
    if !identical {
        eprintln!("DIVERGENCE in workload '{name}':");
        eprintln!("  congest metrics: {}", reference.metrics);
        eprintln!("  adapter metrics: {}", adapter.congest);
    }
    MpcWorkloadRecord {
        name: name.to_string(),
        graph: graph.to_string(),
        n,
        m: g.num_edges(),
        seed,
        memory_words,
        machines: adapter.machines,
        congest_rounds: reference.metrics.rounds,
        mpc_rounds: adapter.mpc.rounds,
        mpc_messages: adapter.mpc.messages,
        mpc_words: adapter.mpc.words,
        peak_memory_words: adapter.mpc.peak_memory_words,
        peak_round_io_words: adapter.mpc.peak_round_io_words,
        wall_ms_reference: ref_ms,
        wall_ms_mpc: mpc_ms,
        engines,
        identical,
    }
}

/// The native greedy 2-ruling set (at every swept thread count) vs its
/// sequential oracle.
fn ruling_set_workload(name: &str, graph: &str, g: &Graph, seed: u64) -> MpcWorkloadRecord {
    let memory_words = recommended_ruling_set_memory_words(g);
    let (oracle, ref_ms) = time_ms(|| lex_first_g2_mis(g));
    let (result, mpc_ms) =
        time_ms(|| g2_ruling_set_mpc(g, memory_words, Engine::Sequential).expect("ruling set run"));
    let mut identical = result.in_r == oracle;
    let mut engines = vec![EngineTiming {
        engine: "mpc_sequential".into(),
        threads: 1,
        wall_ms: mpc_ms,
    }];
    for threads in THREAD_SWEEP {
        let (par, par_ms) = time_ms(|| {
            g2_ruling_set_mpc(g, memory_words, Engine::Parallel { threads })
                .expect("parallel ruling set run")
        });
        identical &= par.in_r == oracle && par.mpc == result.mpc && par.machines == result.machines;
        engines.push(EngineTiming {
            engine: "mpc_parallel".into(),
            threads,
            wall_ms: par_ms,
        });
    }
    if !identical {
        eprintln!("DIVERGENCE in workload '{name}': ruling set != sequential oracle");
    }
    MpcWorkloadRecord {
        name: name.to_string(),
        graph: graph.to_string(),
        n: g.num_nodes(),
        m: g.num_edges(),
        seed,
        memory_words,
        machines: result.machines,
        congest_rounds: 0,
        mpc_rounds: result.mpc.rounds,
        mpc_messages: result.mpc.messages,
        mpc_words: result.mpc.words,
        peak_memory_words: result.mpc.peak_memory_words,
        peak_round_io_words: result.mpc.peak_round_io_words,
        wall_ms_reference: ref_ms,
        wall_ms_mpc: mpc_ms,
        engines,
        identical,
    }
}

fn main() {
    let n = env_usize("BENCH_MPC_N", 10_000);
    let avg_deg = env_usize("BENCH_MPC_AVG_DEG", 6);
    let seed = env_u64("BENCH_MPC_SEED", 45_803);
    let ba_n = env_usize("BENCH_MPC_BA_N", n / 2);
    let ba_k = env_usize("BENCH_MPC_BA_K", 4);
    let out = PathBuf::from(
        std::env::var("BENCH_MPC_OUT").unwrap_or_else(|_| "BENCH_mpc.json".to_string()),
    );
    let m = (n * avg_deg / 2).max(n.saturating_sub(1));

    println!(
        "bench_mpc: pinned instances gnm(n={n}, m={m}) and ba(n={ba_n}, k={ba_k}), seed={seed}, \
         engine sweep {THREAD_SWEEP:?}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let (gnm, gnm_ms) = time_ms(|| generators::connected_gnm(n, m, &mut rng));
    let (ba, ba_ms) = time_ms(|| generators::barabasi_albert(ba_n, ba_k, seed));
    println!("  graphs generated in {gnm_ms:.0} + {ba_ms:.0} ms");

    let workloads = vec![
        adapter_workload("floodmax_adapter", "connected_gnm", &gnm, seed),
        adapter_workload("floodmax_adapter_ba", "barabasi_albert", &ba, seed),
        ruling_set_workload("ruling_set", "connected_gnm", &gnm, seed),
        ruling_set_workload("ruling_set_ba", "barabasi_albert", &ba, seed),
    ];

    for w in &workloads {
        let timings: Vec<String> = w
            .engines
            .iter()
            .map(|e| format!("{}({}) {:.0} ms", e.engine, e.threads, e.wall_ms))
            .collect();
        println!(
            "  {:>19}: {} machines (S = {} words), {} mpc rounds, {} words | ref {:.0} ms, {} | identical: {}",
            w.name, w.machines, w.memory_words, w.mpc_rounds, w.mpc_words,
            w.wall_ms_reference, timings.join(", "), w.identical
        );
        assert!(
            w.peak_memory_words <= w.memory_words && w.peak_round_io_words <= w.memory_words,
            "budget violation escaped the engine in '{}'",
            w.name
        );
    }

    let doc = MpcBench {
        bench: "mpc_model".into(),
        workloads,
    };
    doc.write_json(&out).expect("write BENCH_mpc.json");
    println!("  wrote {}", out.display());

    if doc.workloads.iter().any(|w| !w.identical) {
        eprintln!("FAIL: MPC execution diverged from its reference");
        std::process::exit(1);
    }
    println!("  every MPC execution bit-identical to its reference on every engine");
}
