//! E11 — Section 8 (Theorems 44, 45): the centralized hardness
//! reductions, verified quantitatively.
//!
//! `MVC(H²) = MVC(G) + 2m` for the dangling-path reduction and
//! `MDS(H²) = MDS(G) + 1` for the merged reduction, across random and
//! structured bases; plus the FPTAS-refutation arithmetic.

use pga_bench::{banner, Table};
use pga_exact::mds::mds_size;
use pga_exact::vc::mvc_size;
use pga_graph::power::square;
use pga_graph::{generators, Graph};
use pga_lowerbounds::centralized::{
    dangling_path_reduction, fptas_refutation_eps, merged_dangling_reduction,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E11: Theorem 44 — MVC(H²) = MVC(G) + 2m");
    let t = Table::new(&["base", "n", "m", "MVC(G)", "MVC(H^2)", "expected", "equal"]);
    let mut rng = StdRng::seed_from_u64(44);
    let bases: Vec<(String, Graph)> = vec![
        ("cycle(8)".into(), generators::cycle(8)),
        ("star(7)".into(), generators::star(7)),
        ("K5".into(), generators::complete(5)),
        ("grid(2,4)".into(), generators::grid(2, 4)),
        ("gnp(9,.3)".into(), generators::gnp(9, 0.3, &mut rng)),
        ("gnp(10,.25)".into(), generators::gnp(10, 0.25, &mut rng)),
    ];
    for (name, g) in &bases {
        let h = dangling_path_reduction(g);
        let lhs = mvc_size(&square(&h));
        let rhs = mvc_size(g) + 2 * g.num_edges();
        assert_eq!(lhs, rhs, "{name}");
        t.row(&[
            name.clone(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            mvc_size(g).to_string(),
            lhs.to_string(),
            rhs.to_string(),
            "true".into(),
        ]);
    }

    banner("E11b: Theorem 45 — MDS(H²) = MDS(G) + 1 (merged gadget)");
    let t = Table::new(&["base", "MDS(G)", "MDS(H^2)", "equal"]);
    for (name, g) in &bases {
        if g.num_edges() == 0 {
            continue;
        }
        let (h, _tail) = merged_dangling_reduction(g);
        let lhs = mds_size(&square(&h));
        let rhs = mds_size(g) + 1;
        assert_eq!(lhs, rhs, "{name}");
        t.row(&[
            name.clone(),
            mds_size(g).to_string(),
            lhs.to_string(),
            "true".into(),
        ]);
    }

    banner("E11c: the FPTAS-refutation arithmetic (Theorem 44, second part)");
    let t = Table::new(&[
        "m",
        "eps=1/(3m)",
        "(1+eps)(opt+2m)",
        "opt+2m+1",
        "rounds down",
    ]);
    for &(opt, m) in &[(5usize, 12usize), (10, 30), (20, 80)] {
        let eps = fptas_refutation_eps(m);
        let apx = (1.0 + eps) * (opt as f64 + 2.0 * m as f64);
        let strict = opt as f64 + 2.0 * m as f64 + 1.0;
        assert!(apx < strict);
        t.row(&[
            m.to_string(),
            format!("{eps:.5}"),
            format!("{apx:.3}"),
            format!("{strict:.0}"),
            "true".into(),
        ]);
    }

    println!("\nreading: a (1+ε)-approximation with ε = 1/(3m) would recover exact MVC,");
    println!("so no FPTAS for G²-MVC unless P = NP; the MDS reduction transfers Feige's");
    println!("(1−ε)·ln n inapproximability to G²-MDS.");
}
