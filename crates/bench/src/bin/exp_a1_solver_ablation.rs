//! A1 — Ablation: the Phase-II local solver choice in Algorithm 1.
//!
//! Theorem 1 uses an exact local solve (unbounded computation);
//! Corollary 17 swaps in the polynomial 5/3-approximation; the
//! 2-approximation is the naive floor. This ablation shows what each
//! choice costs in cover quality (the gather communication is
//! solver-independent; only the solution broadcast varies).

use pga_bench::exp_cfg;
use pga_bench::{banner, f3, Table};
use pga_core::mvc::congest::{g2_mvc_congest_cfg, LocalSolver};
use pga_exact::vc::mvc_size;
use pga_graph::cover::is_vertex_cover_on_square;
use pga_graph::generators;
use pga_graph::power::square;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("A1: Phase-II local solver ablation (ε = 1/2)");
    let t = Table::new(&[
        "family", "opt", "exact", "5/3", "2apx", "r(exact)", "r(5/3)", "r(2apx)",
    ]);

    let mut rng = StdRng::seed_from_u64(1);
    let cases = vec![
        ("path(30)".to_string(), generators::path(30)),
        ("cycle(30)".to_string(), generators::cycle(30)),
        (
            "gnp(25,.12)".to_string(),
            generators::connected_gnp(25, 0.12, &mut rng),
        ),
        ("caterpillar".to_string(), generators::caterpillar(6, 3)),
        ("clique-chain".to_string(), generators::clique_chain(4, 5)),
    ];

    for (name, g) in &cases {
        let opt = mvc_size(&square(g));
        let mut sizes = Vec::new();
        let mut rounds = Vec::new();
        for solver in [
            LocalSolver::Exact,
            LocalSolver::FiveThirds,
            LocalSolver::TwoApprox,
        ] {
            let r = g2_mvc_congest_cfg(g, 0.5, solver, &exp_cfg()).expect("simulation");
            assert!(is_vertex_cover_on_square(g, &r.cover));
            sizes.push(r.size());
            rounds.push(r.total_rounds());
        }
        t.row(&[
            name.clone(),
            opt.to_string(),
            sizes[0].to_string(),
            sizes[1].to_string(),
            sizes[2].to_string(),
            rounds[0].to_string(),
            rounds[1].to_string(),
            rounds[2].to_string(),
        ]);
    }

    banner("A1b: measured worst ratios per solver (40 random graphs, n = 16)");
    let t = Table::new(&["solver", "worst ratio", "guarantee"]);
    let mut rng = StdRng::seed_from_u64(2);
    let graphs: Vec<_> = (0..40)
        .map(|_| generators::connected_gnp(16, 0.15, &mut rng))
        .collect();
    for (name, solver, bound) in [
        ("exact", LocalSolver::Exact, 1.5),
        ("5/3", LocalSolver::FiveThirds, 5.0 / 3.0),
        ("2-approx", LocalSolver::TwoApprox, 2.0),
    ] {
        let mut worst: f64 = 1.0;
        for g in &graphs {
            let opt = mvc_size(&square(g)).max(1);
            let r = g2_mvc_congest_cfg(g, 0.5, solver, &exp_cfg()).expect("simulation");
            worst = worst.max(r.size() as f64 / opt as f64);
        }
        assert!(worst <= bound + 1e-9);
        t.row(&[name.to_string(), f3(worst), f3(bound)]);
    }

    println!("\nreading: the gather phase is solver-independent; rounds differ only by");
    println!("the broadcast length of the solver's (larger) cover. The exact solve buys");
    println!("the 1+ε factor; 5/3 keeps computation polynomial at a bounded quality");
    println!("cost (Corollary 17).");
}
