//! Fault-injection trajectory: degradation curves, the price of
//! reliability, and the replay-determinism gate.
//!
//! Sweeps seeded [`FaultSpec`]s — drop rates {0, 1%, 5%, 10%}, delay
//! rates {1%, 5%, 10%}, and crash fractions {1%, 5%} — over pinned
//! instances (a uniform gnm and a
//! heavy-tailed Barabási–Albert) for the paper's CONGEST entry points
//! (`g2_mvc_congest_cfg`, `g2_mds_congest_cfg`) and the native MPC
//! ruling set (`g2_ruling_set_mpc_cfg`), each cell under all three
//! delivery pipelines:
//!
//! * **raw** — faulted channels, no recovery (the historical sweep);
//! * **arq** — the kernel's sliding-window ack/retransmit executor
//!   ([`ReliabilitySpec::arq`]: window 32, retransmit after 2 ticks,
//!   16 retries before a link is declared dead);
//! * **arq_timeout** — ARQ with a tight retry budget (3) plus
//!   phase-level deadlines (slack 2) that fall back to a partial
//!   aggregate, trading approximation for guaranteed convergence.
//!
//! A FloodMax record-and-replay workload rides along on the raw
//! pipeline only (the `FaultTrace` machinery bypasses the ARQ layer).
//! Per cell the sweep records: convergence within the round budget and
//! — for starved cells — the **stall cause** (`"round_limit"` vs
//! `"dead_link"`, recovered by re-running the cell with `PGA_TRACE`
//! and reading the dead-link counters out of the telemetry), output
//! validity (vertex cover / dominating set of `G²`), the
//! approximation-degradation ratio against the fault-free run, the
//! fault- and reliability-plane accounting (retransmissions, acks,
//! dead links, degraded phases), and whether re-executing the same
//! `(seed, FaultSpec)` on the multi-threaded engine and on the packed
//! codec plane (or replaying the recorded
//! [`FaultTrace`](pga_congest::FaultTrace), for the FloodMax workload)
//! reproduced the run bit for bit. It then:
//!
//! * writes the machine-readable `BENCH_fault.json` artifact
//!   (schema: `pga_bench::harness::FaultBench`),
//! * with `--assert-replay`, exits with code 4 if any cell failed
//!   replay identity — this is CI's fault-determinism gate,
//! * with `--assert-recovery`, exits with code 5 unless every
//!   MVC/ruling-set drop cell that stalls on the raw pipeline
//!   converges to a valid output under both ARQ pipelines — the
//!   reliability layer's headline guarantee,
//! * with `--matrix-only --seed S --threads T`, skips the sweep and
//!   prints a single digest line for a fixed hostile spec executed at
//!   the given seed and thread count on both the raw and the
//!   ARQ+timeout pipeline; CI runs this over a seed × thread matrix
//!   and asserts the digests agree across thread counts.
//!
//! Environment overrides: `BENCH_FAULT_N` (vertices),
//! `BENCH_FAULT_SEED`, `BENCH_FAULT_THREADS` (gate thread count),
//! `BENCH_FAULT_MAX_ROUNDS` (round budget under faults; ARQ cells get
//! 50x that in kernel ticks — a clean app round costs at least two
//! ticks and retransmit waits stretch it further),
//! `BENCH_FAULT_OUT` (artifact path).

use pga_bench::harness::{env_u64, env_usize, time_ms, FaultBench, FaultRecord};
use pga_bench::trace::parse_trace;
use pga_congest::primitives::FloodMax;
use pga_congest::{FaultSpec, Metrics, ReliabilitySpec, RunConfig, Simulator};
use pga_core::mds::congest_g2::g2_mds_congest_cfg;
use pga_core::mvc::congest::{g2_mvc_congest_cfg, LocalSolver};
use pga_graph::cover::{is_dominating_set_on_square, is_vertex_cover_on_square};
use pga_graph::{generators, Graph, NodeId};
use pga_mpc::{g2_ruling_set_mpc_cfg, recommended_ruling_set_memory_words};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// The drop-rate sweep (crash-free cells). The deterministic
/// gather–scatter phases assume reliable channels, so nonzero drop
/// rates legitimately stall some raw-pipeline workloads — those cells
/// record `converged: false`, which is the measurement; the ARQ
/// pipelines are expected to recover them (`--assert-recovery`).
const DROP_SWEEP: [f64; 4] = [0.0, 0.01, 0.05, 0.1];
/// The delay-rate sweep (messages re-ordered in time but never lost):
/// every workload converges here, so these cells carry the
/// size-and-rounds degradation curves.
const DELAY_SWEEP: [f64; 3] = [0.01, 0.05, 0.1];
/// Maximum extra rounds a delayed message is parked.
const MAX_DELAY: u32 = 3;
/// The crash-fraction sweep (drop-free cells); crashes land within the
/// first `CRASH_WITHIN` rounds.
const CRASH_SWEEP: [f64; 2] = [0.01, 0.05];
/// Crash-activation window in rounds.
const CRASH_WITHIN: u32 = 10;
/// Tick-budget multiplier for the ARQ pipelines (the reliable executor
/// runs on the kernel tick clock: 2+ ticks per clean app round, more
/// under retransmission).
const ARQ_TICK_FACTOR: usize = 50;

/// The delivery pipeline a cell runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pipeline {
    /// Faulted channels, no recovery.
    Raw,
    /// Sliding-window ack/retransmit, patient retry budget.
    Arq,
    /// ARQ with a tight retry budget plus phase-level deadlines.
    ArqTimeout,
}

impl Pipeline {
    const ALL: [Pipeline; 3] = [Pipeline::Raw, Pipeline::Arq, Pipeline::ArqTimeout];

    fn name(self) -> &'static str {
        match self {
            Pipeline::Raw => "raw",
            Pipeline::Arq => "arq",
            Pipeline::ArqTimeout => "arq_timeout",
        }
    }

    fn reliability(self) -> Option<ReliabilitySpec> {
        match self {
            Pipeline::Raw => None,
            Pipeline::Arq => Some(ReliabilitySpec::arq()),
            Pipeline::ArqTimeout => Some(
                ReliabilitySpec::arq()
                    .with_max_retries(3)
                    .with_phase_timeouts(2),
            ),
        }
    }

    /// The cell's round budget: app rounds on the raw pipeline, kernel
    /// ticks on the reliable one.
    fn budget(self, max_rounds: usize) -> usize {
        match self {
            Pipeline::Raw => max_rounds,
            _ => max_rounds * ARQ_TICK_FACTOR,
        }
    }
}

/// FNV-1a over a byte stream — the workload digest the seed × thread
/// matrix compares.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn eat_str(&mut self, s: &str) {
        self.eat(s.as_bytes());
    }
}

/// Everything a single `(workload, spec, pipeline)` cell produces,
/// before it is joined with the clean-run baseline into a
/// [`FaultRecord`].
struct CellOutcome {
    converged: bool,
    stall: Option<&'static str>,
    valid: bool,
    rounds: usize,
    convergence_round: usize,
    output_size: usize,
    metrics: Metrics,
    replay_identical: bool,
    wall_ms: f64,
    digest: u64,
}

impl CellOutcome {
    fn diverged(wall_ms: f64, digest: u64) -> Self {
        CellOutcome {
            converged: false,
            stall: Some("round_limit"),
            valid: false,
            rounds: 0,
            convergence_round: 0,
            output_size: 0,
            metrics: Metrics::default(),
            replay_identical: true,
            wall_ms,
            digest,
        }
    }
}

/// Folds two phase metrics into one whole-run view (rounds and counters
/// add, peaks max, the later phase's convergence round is offset by the
/// earlier phase's length — mirroring `MpcMetrics::absorb`).
fn fold_metrics(a: &Metrics, b: &Metrics) -> Metrics {
    let mut m = a.clone();
    if b.convergence_round > 0 {
        m.convergence_round = a.rounds + b.convergence_round;
    }
    m.rounds += b.rounds;
    m.messages += b.messages;
    m.bits += b.bits;
    m.max_message_bits = m.max_message_bits.max(b.max_message_bits);
    m.congestion_profile
        .extend_from_slice(&b.congestion_profile);
    m.fault.absorb(&b.fault);
    m
}

/// One cell's execution parameters: the fault spec, the delivery
/// pipeline, the gate thread count, and the (pipeline-scaled) budget.
#[derive(Clone, Copy)]
struct Cell {
    spec: FaultSpec,
    pipeline: Pipeline,
    threads: usize,
    budget: usize,
}

impl Cell {
    fn new(spec: FaultSpec, pipeline: Pipeline, threads: usize, max_rounds: usize) -> Self {
        Cell {
            spec,
            pipeline,
            threads,
            budget: pipeline.budget(max_rounds),
        }
    }

    /// The cell's [`RunConfig`] for a given engine and codec plane.
    fn cfg(&self, threads: usize, codec: bool) -> RunConfig {
        let base = if threads <= 1 {
            RunConfig::new().sequential()
        } else {
            RunConfig::new().parallel(threads)
        };
        let base = base
            .codec(codec)
            .adversary(self.spec)
            .max_rounds(self.budget);
        match self.pipeline.reliability() {
            Some(rel) => base.reliability(rel),
            None => base,
        }
    }
}

/// Re-executes a starved cell with `PGA_TRACE` pointed at a scratch
/// file and counts the dead links recorded in the emitted telemetry —
/// the only window into an errored run, whose metrics never surface.
/// The trace parser tolerates the aborted final run (no `run_end`).
fn traced_dead_links(rerun: impl FnOnce()) -> u64 {
    let path = std::env::temp_dir().join(format!("bench_fault_stall_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("PGA_TRACE", &path);
    rerun();
    std::env::remove_var("PGA_TRACE");
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    let _ = std::fs::remove_file(&path);
    parse_trace(&text)
        .map(|runs| runs.iter().map(|r| r.arq_totals().2).sum())
        .unwrap_or(0)
}

/// Classifies a starved cell: `"dead_link"` when the traced rerun shows
/// the ARQ layer abandoned a link, `"round_limit"` otherwise (raw-path
/// stalls always land here — the raw executor has no link table).
fn stall_cause(rerun: impl FnOnce()) -> &'static str {
    if traced_dead_links(rerun) > 0 {
        "dead_link"
    } else {
        "round_limit"
    }
}

/// Runs the MVC entry point for `cell` on the primary engine, the
/// gate-thread engine, and the gate-thread engine on the packed codec
/// plane, checking bit-identity across all three.
fn mvc_cell(g: &Graph, cell: Cell) -> CellOutcome {
    let run = |t, codec| g2_mvc_congest_cfg(g, 0.5, LocalSolver::FiveThirds, &cell.cfg(t, codec));
    let (primary, wall_ms) = time_ms(|| run(1, false));
    let mut d = Digest::new();
    let replay_identical = [run(cell.threads, false), run(cell.threads, true)]
        .iter()
        .all(|replica| match (&primary, replica) {
            (Ok(a), Ok(b)) => {
                a.cover == b.cover
                    && a.phase1_metrics == b.phase1_metrics
                    && a.phase2_metrics == b.phase2_metrics
            }
            (Err(a), Err(b)) => a == b,
            _ => false,
        });
    match primary {
        Ok(r) => {
            d.eat_str(&format!(
                "{:?}{:?}{:?}",
                r.cover, r.phase1_metrics, r.phase2_metrics
            ));
            let m = fold_metrics(&r.phase1_metrics, &r.phase2_metrics);
            CellOutcome {
                converged: true,
                stall: None,
                valid: is_vertex_cover_on_square(g, &r.cover),
                rounds: m.rounds,
                convergence_round: m.convergence_round,
                output_size: r.cover.iter().filter(|&&b| b).count(),
                metrics: m,
                replay_identical,
                wall_ms,
                digest: d.0,
            }
        }
        Err(e) => {
            d.eat_str(&format!("{e:?}"));
            CellOutcome {
                replay_identical,
                stall: Some(stall_cause(|| {
                    let _ = run(1, false);
                })),
                ..CellOutcome::diverged(wall_ms, d.0)
            }
        }
    }
}

/// The MDS entry point, same engine-identity protocol.
fn mds_cell(g: &Graph, cell: Cell) -> CellOutcome {
    let seed = cell.spec.seed;
    let run = |t, codec| g2_mds_congest_cfg(g, 2, seed, &cell.cfg(t, codec));
    let (primary, wall_ms) = time_ms(|| run(1, false));
    let mut d = Digest::new();
    let replay_identical = [run(cell.threads, false), run(cell.threads, true)]
        .iter()
        .all(|replica| match (&primary, replica) {
            (Ok(a), Ok(b)) => a.dominating_set == b.dominating_set && a.metrics == b.metrics,
            (Err(a), Err(b)) => a == b,
            _ => false,
        });
    match primary {
        Ok(r) => {
            d.eat_str(&format!("{:?}{:?}", r.dominating_set, r.metrics));
            CellOutcome {
                converged: true,
                stall: None,
                valid: is_dominating_set_on_square(g, &r.dominating_set),
                rounds: r.metrics.rounds,
                convergence_round: r.metrics.convergence_round,
                output_size: r.size(),
                metrics: r.metrics,
                replay_identical,
                wall_ms,
                digest: d.0,
            }
        }
        Err(e) => {
            d.eat_str(&format!("{e:?}"));
            CellOutcome {
                replay_identical,
                stall: Some(stall_cause(|| {
                    let _ = run(1, false);
                })),
                ..CellOutcome::diverged(wall_ms, d.0)
            }
        }
    }
}

/// The native MPC ruling set. MPC metrics are word-based, so only the
/// fault counters and round structure flow into the record.
fn ruling_set_cell(g: &Graph, cell: Cell) -> CellOutcome {
    let words = recommended_ruling_set_memory_words(g);
    let run = |t, codec| g2_ruling_set_mpc_cfg(g, words, &cell.cfg(t, codec));
    let (primary, wall_ms) = time_ms(|| run(1, false));
    let mut d = Digest::new();
    let replay_identical = [run(cell.threads, false), run(cell.threads, true)]
        .iter()
        .all(|replica| match (&primary, replica) {
            (Ok(a), Ok(b)) => a.in_r == b.in_r && a.mpc == b.mpc,
            (Err(a), Err(b)) => a == b,
            _ => false,
        });
    match primary {
        Ok(r) => {
            d.eat_str(&format!("{:?}{:?}", r.in_r, r.mpc));
            let metrics = Metrics {
                rounds: r.mpc.rounds,
                messages: r.mpc.messages,
                bits: r.mpc.words * 64,
                fault: r.mpc.fault,
                convergence_round: r.mpc.convergence_round,
                ..Metrics::default()
            };
            CellOutcome {
                converged: true,
                stall: None,
                valid: is_dominating_set_on_square(g, &r.in_r),
                rounds: r.mpc.rounds,
                convergence_round: r.mpc.convergence_round,
                output_size: r.in_r.iter().filter(|&&b| b).count(),
                metrics,
                replay_identical,
                wall_ms,
                digest: d.0,
            }
        }
        Err(e) => {
            d.eat_str(&format!("{e:?}"));
            CellOutcome {
                replay_identical,
                stall: Some(stall_cause(|| {
                    let _ = run(1, false);
                })),
                ..CellOutcome::diverged(wall_ms, d.0)
            }
        }
    }
}

/// FloodMax through the record-and-replay pipeline: the primary run
/// records a [`pga_congest::FaultTrace`], the replica replays it on the
/// gate-thread engine, and `output_size` counts the nodes that still
/// learned the true global maximum. Raw pipeline only — the trace
/// recorder sits below the ARQ layer.
fn floodmax_trace_cell(g: &Graph, cell: Cell) -> CellOutcome {
    let n = g.num_nodes();
    let sim = Simulator::congest(g);
    let nodes = || -> Vec<FloodMax> {
        (0..n)
            .map(|i| FloodMax::new(NodeId::from_index(i)))
            .collect()
    };
    let record_cfg = RunConfig::new().sequential().max_rounds(cell.budget);
    let ((traced, wall_ms), mut d) = (
        time_ms(|| sim.run_traced(nodes(), cell.spec, &record_cfg)),
        Digest::new(),
    );
    match traced {
        Ok((report, trace)) => {
            d.eat_str(&format!("{:?}{:?}", report.outputs, report.metrics));
            let replay_cfg = RunConfig::new()
                .parallel(cell.threads)
                .max_rounds(cell.budget);
            let replay_identical = match sim.run_replay(nodes(), &trace, &replay_cfg) {
                Ok(r) => r.outputs == report.outputs && r.metrics == report.metrics,
                Err(_) => false,
            };
            let global_max = NodeId::from_index(n - 1);
            CellOutcome {
                converged: true,
                stall: None,
                valid: report.outputs.iter().all(|&b| b == global_max),
                rounds: report.metrics.rounds,
                convergence_round: report.metrics.convergence_round,
                output_size: report.outputs.iter().filter(|&&b| b == global_max).count(),
                metrics: report.metrics,
                replay_identical,
                wall_ms,
                digest: d.0,
            }
        }
        Err(e) => {
            d.eat_str(&format!("{e:?}"));
            // A starved recording must at least fail identically again.
            let replay_identical = matches!(
                sim.run_traced(nodes(), cell.spec, &record_cfg),
                Err(ref e2) if *e2 == e
            );
            CellOutcome {
                replay_identical,
                ..CellOutcome::diverged(wall_ms, d.0)
            }
        }
    }
}

type CellFn = fn(&Graph, Cell) -> CellOutcome;

/// The fault grid: the drop sweep (crash-free), the delay sweep, then
/// the crash sweep (drop-free), all deriving from the bench seed.
fn fault_grid(seed: u64) -> Vec<FaultSpec> {
    let mut grid: Vec<FaultSpec> = DROP_SWEEP
        .iter()
        .map(|&p| FaultSpec::seeded(seed).drop(p))
        .collect();
    grid.extend(
        DELAY_SWEEP
            .iter()
            .map(|&p| FaultSpec::seeded(seed).delay(p, MAX_DELAY)),
    );
    grid.extend(
        CRASH_SWEEP
            .iter()
            .map(|&p| FaultSpec::seeded(seed).crash(p, CRASH_WITHIN)),
    );
    grid
}

fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A drop-only cell: the recovery gate's domain (dead links and phase
/// timeouts have clean semantics there; crash cells legitimately lose
/// actors and delay cells never stall).
fn drop_only(r: &FaultRecord) -> bool {
    r.drop_ppm > 0 && r.dup_ppm == 0 && r.delay_ppm == 0 && r.crash_ppm == 0
}

/// The `--assert-recovery` gate: every MVC/ruling-set drop cell that
/// stalled on the raw pipeline must have converged to a valid,
/// replay-identical output on both ARQ pipelines. Returns the failure
/// descriptions.
fn recovery_failures(records: &[FaultRecord]) -> Vec<String> {
    let mut failures = Vec::new();
    let gated =
        |r: &&FaultRecord| r.workload.starts_with("mvc") || r.workload.starts_with("ruling_set");
    for raw in records
        .iter()
        .filter(|r| r.pipeline == "raw" && !r.converged)
        .filter(|r| drop_only(r))
        .filter(gated)
    {
        for pipeline in ["arq", "arq_timeout"] {
            let Some(rec) = records.iter().find(|r| {
                r.pipeline == pipeline && r.workload == raw.workload && r.drop_ppm == raw.drop_ppm
            }) else {
                failures.push(format!(
                    "{}/{}ppm: no {pipeline} cell recorded",
                    raw.workload, raw.drop_ppm
                ));
                continue;
            };
            if !(rec.converged && rec.valid && rec.replay_identical) {
                failures.push(format!(
                    "{}/{}ppm/{pipeline}: converged={} valid={} replay_identical={} \
                     (stall={:?}, dead_links={}, degraded={})",
                    rec.workload,
                    rec.drop_ppm,
                    rec.converged,
                    rec.valid,
                    rec.replay_identical,
                    rec.stall,
                    rec.dead_links,
                    rec.degraded
                ));
            }
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = env_usize("BENCH_FAULT_N", 96);
    let seed = env_u64("BENCH_FAULT_SEED", 45803);
    let threads = env_usize("BENCH_FAULT_THREADS", 4);
    let max_rounds = env_usize("BENCH_FAULT_MAX_ROUNDS", 600);

    let mut rng = StdRng::seed_from_u64(seed);
    let gnm = generators::connected_gnm(n, 3 * n, &mut rng);
    let ba = generators::barabasi_albert(n, 3.min(n - 1).max(1), seed);

    if args.iter().any(|a| a == "--matrix-only") {
        let mseed = arg_usize(&args, "--seed", 1) as u64;
        let mthreads = arg_usize(&args, "--threads", 1);
        let spec = FaultSpec::seeded(mseed)
            .drop(0.05)
            .crash(0.02, CRASH_WITHIN);
        let mut d = Digest::new();
        // Both the raw adversarial executor and the reliable (ARQ +
        // phase timeout) one must be schedule-independent: the matrix
        // digests cover the two.
        for pipeline in [Pipeline::Raw, Pipeline::ArqTimeout] {
            for (name, cell_fn) in [
                ("mvc_gnm", mvc_cell as CellFn),
                ("mds_gnm", mds_cell as CellFn),
                ("ruling_set_gnm", ruling_set_cell as CellFn),
            ] {
                let out = cell_fn(&gnm, Cell::new(spec, pipeline, mthreads, max_rounds));
                d.eat_str(name);
                d.eat_str(pipeline.name());
                d.eat(&out.digest.to_le_bytes());
                eprintln!(
                    "matrix {name}/{}: seed={mseed} threads={mthreads} digest={:016x}",
                    pipeline.name(),
                    out.digest
                );
            }
        }
        // The single stdout token CI's seed × thread matrix compares.
        println!("{:016x}", d.0);
        return;
    }

    let workloads: [(&str, &Graph, &str, CellFn, &[Pipeline]); 5] = [
        ("mvc_gnm", &gnm, "connected_gnm", mvc_cell, &Pipeline::ALL),
        ("mvc_ba", &ba, "barabasi_albert", mvc_cell, &Pipeline::ALL),
        ("mds_gnm", &gnm, "connected_gnm", mds_cell, &Pipeline::ALL),
        (
            "ruling_set_gnm",
            &gnm,
            "connected_gnm",
            ruling_set_cell,
            &Pipeline::ALL,
        ),
        (
            "floodmax_trace_gnm",
            &gnm,
            "connected_gnm",
            floodmax_trace_cell,
            &[Pipeline::Raw],
        ),
    ];

    let mut records = Vec::new();
    let mut replay_failures = 0usize;
    for (name, g, graph, cell_fn, pipelines) in workloads {
        for &pipeline in pipelines {
            let mut clean_size = 0usize;
            for spec in fault_grid(seed) {
                let out = cell_fn(g, Cell::new(spec, pipeline, threads, max_rounds));
                if spec.is_none() {
                    clean_size = out.output_size;
                    assert!(
                        out.valid && out.converged,
                        "{name}/{}: fault-free run must converge to a valid output",
                        pipeline.name()
                    );
                }
                if !out.replay_identical {
                    replay_failures += 1;
                }
                println!(
                    "{name}/{}: drop {}ppm delay {}ppm crash {}ppm -> size {} (clean {}), \
                     rounds {}, dropped {}, crashed {}, retransmitted {}, dead_links {}, \
                     degraded {}, valid {}, stall {:?}, replay_identical {}",
                    pipeline.name(),
                    spec.drop_ppm,
                    spec.delay_ppm,
                    spec.crash_ppm,
                    out.output_size,
                    clean_size,
                    out.rounds,
                    out.metrics.fault.dropped,
                    out.metrics.fault.crashed,
                    out.metrics.fault.retransmitted,
                    out.metrics.fault.dead_links,
                    out.metrics.fault.degraded,
                    out.valid,
                    out.stall,
                    out.replay_identical
                );
                records.push(FaultRecord {
                    workload: name.to_string(),
                    pipeline: pipeline.name().to_string(),
                    graph: graph.to_string(),
                    n: g.num_nodes(),
                    m: g.num_edges(),
                    seed: spec.seed,
                    drop_ppm: spec.drop_ppm,
                    dup_ppm: spec.dup_ppm,
                    delay_ppm: spec.delay_ppm,
                    crash_ppm: spec.crash_ppm,
                    converged: out.converged,
                    stall: out.stall.map(str::to_string),
                    valid: out.valid,
                    rounds: out.rounds,
                    convergence_round: out.convergence_round,
                    output_size: out.output_size,
                    clean_size,
                    degradation: if clean_size > 0 && out.converged {
                        out.output_size as f64 / clean_size as f64
                    } else {
                        0.0
                    },
                    delivered: out.metrics.fault.delivered,
                    dropped: out.metrics.fault.dropped,
                    duplicated: out.metrics.fault.duplicated,
                    delayed: out.metrics.fault.delayed,
                    crashed: out.metrics.fault.crashed,
                    retransmitted: out.metrics.fault.retransmitted,
                    acks: out.metrics.fault.acks,
                    dead_links: out.metrics.fault.dead_links,
                    degraded: out.metrics.fault.degraded,
                    replay_identical: out.replay_identical,
                    wall_ms: out.wall_ms,
                });
            }
        }
    }

    let bench = FaultBench {
        bench: "fault_plane".into(),
        seed,
        workloads: records,
    };
    let out_path = std::env::var("BENCH_FAULT_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("BENCH_fault.json"));
    bench.write_json(&out_path).expect("write artifact");
    println!("wrote {}", out_path.display());

    let recovery = recovery_failures(&bench.workloads);
    if recovery.is_empty() {
        println!("recovery held: every stalled raw drop cell converged under both ARQ pipelines");
    } else {
        eprintln!("recovery FAILED in {} cell(s):", recovery.len());
        for f in &recovery {
            eprintln!("  {f}");
        }
        if args.iter().any(|a| a == "--assert-recovery") {
            std::process::exit(5);
        }
    }

    if replay_failures > 0 {
        eprintln!("replay identity FAILED in {replay_failures} cell(s)");
        if args.iter().any(|a| a == "--assert-replay") {
            std::process::exit(4);
        }
    } else {
        println!(
            "replay identity held in all {} cells",
            bench.workloads.len()
        );
    }
}
