//! E15 — graceful and ungraceful degradation under an adversarial
//! message plane.
//!
//! The paper's algorithms are stated for reliable synchronous CONGEST;
//! this experiment measures what each entry point actually does when
//! that assumption is broken by the seeded fault injector: per-message
//! drops (omission faults), bounded delays (asynchrony within a
//! window), and crash failures. Three regimes emerge:
//!
//! * **delay** — every workload still converges: the `(1+ε)` MVC cover
//!   grows by a vertex or two and the round count stretches, the MDS
//!   and ruling set reconverge to the same sets;
//! * **drop** — the deterministic gather–scatter phases (MVC, ruling
//!   set) stall forever waiting for lost messages (reported as `stall`),
//!   while the sampling-based MDS re-floods and stays correct;
//! * **crash** — small crash fractions before the activation window are
//!   often absorbed; larger ones stall the convergecast workloads.
//!
//! Every cell is a pure function of `(instance seed, FaultSpec)` and is
//! executed twice — sequential and 4-thread sharded — asserting
//! bit-identical results (the replay-determinism property of the
//! adversarial executor).

use pga_bench::{banner, f3, Table};
use pga_congest::{FaultSpec, RunConfig};
use pga_core::mds::congest_g2::g2_mds_congest_cfg;
use pga_core::mvc::congest::{g2_mvc_congest_cfg, LocalSolver};
use pga_graph::cover::{is_dominating_set_on_square, is_vertex_cover_on_square};
use pga_graph::generators;
use pga_graph::Graph;
use pga_mpc::{g2_ruling_set_mpc_cfg, recommended_ruling_set_memory_words};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 15;
const MAX_ROUNDS: usize = 800;

fn specs() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("clean", FaultSpec::none()),
        ("drop 1%", FaultSpec::seeded(SEED).drop(0.01)),
        ("drop 5%", FaultSpec::seeded(SEED).drop(0.05)),
        ("delay 1%", FaultSpec::seeded(SEED).delay(0.01, 3)),
        ("delay 5%", FaultSpec::seeded(SEED).delay(0.05, 3)),
        ("delay 10%", FaultSpec::seeded(SEED).delay(0.10, 3)),
        ("crash 2%", FaultSpec::seeded(SEED).crash(0.02, 10)),
        ("crash 5%", FaultSpec::seeded(SEED).crash(0.05, 10)),
    ]
}

fn cfg(spec: FaultSpec, threads: usize) -> RunConfig {
    let base = if threads <= 1 {
        RunConfig::new().sequential()
    } else {
        RunConfig::new().parallel(threads)
    };
    base.adversary(spec).max_rounds(MAX_ROUNDS)
}

/// One workload row: `(size, rounds, dropped+delayed+crashed, valid)`
/// or `None` when the adversary starved the run past the round budget.
type Cell = Option<(usize, usize, u64, bool)>;

fn row_cells(label: &str, cell: impl Fn(&RunConfig) -> Cell, t: &Table, clean_size: usize) {
    for (spec_name, spec) in specs() {
        let seq = cell(&cfg(spec, 1));
        let par = cell(&cfg(spec, 4));
        assert_eq!(seq, par, "{label}/{spec_name}: engines diverged");
        match seq {
            Some((size, rounds, faults, valid)) => t.row(&[
                label.to_string(),
                spec_name.to_string(),
                size.to_string(),
                if clean_size > 0 {
                    f3(size as f64 / clean_size as f64)
                } else {
                    f3(1.0)
                },
                rounds.to_string(),
                faults.to_string(),
                if valid { "yes".into() } else { "NO".into() },
            ]),
            None => t.row(&[
                label.to_string(),
                spec_name.to_string(),
                "-".into(),
                "-".into(),
                "stall".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
}

fn main() {
    banner("E15: degradation under seeded fault injection (drop / delay / crash)");
    let mut rng = StdRng::seed_from_u64(SEED);
    let g: Graph = generators::connected_gnm(64, 192, &mut rng);
    println!(
        "instance: gnm(n=64, m=192), every cell run sequential AND 4-thread sharded, \
         asserted bit-identical"
    );

    let t = Table::new(&[
        "workload", "faults", "size", "ratio", "rounds", "injected", "valid",
    ]);

    let mvc = |c: &RunConfig| -> Cell {
        g2_mvc_congest_cfg(&g, 0.5, LocalSolver::FiveThirds, c)
            .ok()
            .map(|r| {
                let m = &r.phase1_metrics;
                let m2 = &r.phase2_metrics;
                let injected = m.fault.dropped
                    + m.fault.delayed
                    + m.fault.crashed
                    + m2.fault.dropped
                    + m2.fault.delayed
                    + m2.fault.crashed;
                (
                    r.size(),
                    r.total_rounds(),
                    injected,
                    is_vertex_cover_on_square(&g, &r.cover),
                )
            })
    };
    let mvc_clean = mvc(&cfg(FaultSpec::none(), 1)).expect("clean MVC").0;
    row_cells("mvc(eps=0.5)", mvc, &t, mvc_clean);

    let mds = |c: &RunConfig| -> Cell {
        g2_mds_congest_cfg(&g, 2, SEED, c).ok().map(|r| {
            let injected =
                r.metrics.fault.dropped + r.metrics.fault.delayed + r.metrics.fault.crashed;
            (
                r.size(),
                r.metrics.rounds,
                injected,
                is_dominating_set_on_square(&g, &r.dominating_set),
            )
        })
    };
    let mds_clean = mds(&cfg(FaultSpec::none(), 1)).expect("clean MDS").0;
    row_cells("mds(theorem28)", mds, &t, mds_clean);

    let words = recommended_ruling_set_memory_words(&g);
    let rs = |c: &RunConfig| -> Cell {
        g2_ruling_set_mpc_cfg(&g, words, c).ok().map(|r| {
            let injected = r.mpc.fault.dropped + r.mpc.fault.delayed + r.mpc.fault.crashed;
            (
                r.in_r.iter().filter(|&&b| b).count(),
                r.mpc.rounds,
                injected,
                is_dominating_set_on_square(&g, &r.in_r),
            )
        })
    };
    let rs_clean = rs(&cfg(FaultSpec::none(), 1)).expect("clean ruling set").0;
    row_cells("ruling_set(mpc)", rs, &t, rs_clean);

    println!(
        "\nstall = round budget ({MAX_ROUNDS}) exhausted: the convergecast phases wait \
         forever for omitted messages. Delay cells converge with a stretched round \
         count; the sampled MDS tolerates drops outright."
    );
}
