//! E15 — graceful and ungraceful degradation under an adversarial
//! message plane, and what the reliability layer buys back.
//!
//! The paper's algorithms are stated for reliable synchronous CONGEST;
//! this experiment measures what each entry point actually does when
//! that assumption is broken by the seeded fault injector: per-message
//! drops (omission faults), bounded delays (asynchrony within a
//! window), and crash failures. Each cell now runs under three
//! delivery pipelines:
//!
//! * **raw** — the historical measurement: the deterministic
//!   gather–scatter phases stall forever on lost messages (reported as
//!   `stall`), the sampling-based MDS re-floods and stays correct,
//!   delay cells converge with stretched round counts;
//! * **arq** — the kernel's sliding-window ack/retransmit executor
//!   recovers every drop and delay cell bit-identically to the clean
//!   run (asserted), at the price of retransmissions and ack traffic;
//!   crash cells may still stall: a crashed endpoint severs its links
//!   for good and no retransmission brings it back;
//! * **arq+timeout** — ARQ with a tight retry budget plus phase-level
//!   deadlines falling back to partial aggregates: **every** cell
//!   converges to a valid cover / dominating set (asserted), with the
//!   `degraded` column counting the phases that paid for it in
//!   approximation quality.
//!
//! Every cell is a pure function of `(instance seed, FaultSpec)` and is
//! executed twice — sequential and 4-thread sharded — asserting
//! bit-identical results (the replay-determinism property of both the
//! adversarial and the reliable executor).

use pga_bench::{banner, f3, Table};
use pga_congest::{FaultSpec, ReliabilitySpec, RunConfig};
use pga_core::mds::congest_g2::g2_mds_congest_cfg;
use pga_core::mvc::congest::{g2_mvc_congest_cfg, LocalSolver};
use pga_graph::cover::{is_dominating_set_on_square, is_vertex_cover_on_square};
use pga_graph::generators;
use pga_graph::Graph;
use pga_mpc::{g2_ruling_set_mpc_cfg, recommended_ruling_set_memory_words};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 15;
const MAX_ROUNDS: usize = 800;
/// Tick-budget multiplier for the reliable pipelines (the ARQ executor
/// runs on the kernel tick clock: 2+ ticks per clean app round).
const ARQ_TICK_FACTOR: usize = 50;

fn specs() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("clean", FaultSpec::none()),
        ("drop 1%", FaultSpec::seeded(SEED).drop(0.01)),
        ("drop 5%", FaultSpec::seeded(SEED).drop(0.05)),
        ("delay 1%", FaultSpec::seeded(SEED).delay(0.01, 3)),
        ("delay 5%", FaultSpec::seeded(SEED).delay(0.05, 3)),
        ("delay 10%", FaultSpec::seeded(SEED).delay(0.10, 3)),
        ("crash 2%", FaultSpec::seeded(SEED).crash(0.02, 10)),
        ("crash 5%", FaultSpec::seeded(SEED).crash(0.05, 10)),
    ]
}

/// The three delivery pipelines of the sweep.
fn pipelines() -> Vec<(&'static str, Option<ReliabilitySpec>)> {
    vec![
        ("raw", None),
        ("arq", Some(ReliabilitySpec::arq())),
        (
            "arq+timeout",
            Some(
                ReliabilitySpec::arq()
                    .with_max_retries(3)
                    .with_phase_timeouts(2),
            ),
        ),
    ]
}

fn cfg(spec: FaultSpec, threads: usize, rel: Option<ReliabilitySpec>) -> RunConfig {
    let base = if threads <= 1 {
        RunConfig::new().sequential()
    } else {
        RunConfig::new().parallel(threads)
    };
    let budget = match rel {
        Some(_) => MAX_ROUNDS * ARQ_TICK_FACTOR,
        None => MAX_ROUNDS,
    };
    let base = base.adversary(spec).max_rounds(budget);
    match rel {
        Some(r) => base.reliability(r),
        None => base,
    }
}

/// One workload row: `(size, rounds, dropped+delayed+crashed,
/// retransmitted, degraded, valid)` or `None` when the adversary
/// starved the run past the round budget.
type Cell = Option<(usize, usize, u64, u64, u64, bool)>;

fn row_cells(label: &str, cell: impl Fn(&RunConfig) -> Cell, t: &Table, clean_size: usize) {
    for (pipe_name, rel) in pipelines() {
        for (spec_name, spec) in specs() {
            let seq = cell(&cfg(spec, 1, rel));
            let par = cell(&cfg(spec, 4, rel));
            assert_eq!(
                seq, par,
                "{label}/{pipe_name}/{spec_name}: engines diverged"
            );
            // The reliability guarantees, asserted: ARQ recovers every
            // lossless-endpoint cell (drop/delay — crashes sever links
            // beyond retransmission's reach), and ARQ with phase
            // timeouts converges everywhere, always validly.
            let crash_cell = spec.crash_ppm > 0;
            match (pipe_name, &seq) {
                ("arq", None) if !crash_cell => {
                    panic!("{label}/arq/{spec_name}: drop/delay cell must converge under ARQ")
                }
                ("arq", Some(c)) if !crash_cell => {
                    assert!(c.5, "{label}/arq/{spec_name}: invalid output")
                }
                ("arq+timeout", None) => {
                    panic!("{label}/arq+timeout/{spec_name}: phase timeouts must converge")
                }
                ("arq+timeout", Some(c)) => {
                    assert!(c.5, "{label}/arq+timeout/{spec_name}: invalid output")
                }
                _ => {}
            }
            match seq {
                Some((size, rounds, faults, retransmitted, degraded, valid)) => t.row(&[
                    label.to_string(),
                    pipe_name.to_string(),
                    spec_name.to_string(),
                    size.to_string(),
                    if clean_size > 0 {
                        f3(size as f64 / clean_size as f64)
                    } else {
                        f3(1.0)
                    },
                    rounds.to_string(),
                    faults.to_string(),
                    retransmitted.to_string(),
                    degraded.to_string(),
                    if valid { "yes".into() } else { "NO".into() },
                ]),
                None => t.row(&[
                    label.to_string(),
                    pipe_name.to_string(),
                    spec_name.to_string(),
                    "-".into(),
                    "-".into(),
                    "stall".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
}

fn main() {
    banner("E15: degradation under seeded fault injection, raw vs ARQ vs ARQ+timeout");
    let mut rng = StdRng::seed_from_u64(SEED);
    let g: Graph = generators::connected_gnm(64, 192, &mut rng);
    println!(
        "instance: gnm(n=64, m=192), every cell run sequential AND 4-thread sharded, \
         asserted bit-identical; rounds are kernel ticks on the ARQ pipelines"
    );

    let t = Table::new(&[
        "workload", "pipeline", "faults", "size", "ratio", "rounds", "injected", "retx",
        "degraded", "valid",
    ]);

    let mvc = |c: &RunConfig| -> Cell {
        g2_mvc_congest_cfg(&g, 0.5, LocalSolver::FiveThirds, c)
            .ok()
            .map(|r| {
                let m = &r.phase1_metrics;
                let m2 = &r.phase2_metrics;
                let injected = m.fault.dropped
                    + m.fault.delayed
                    + m.fault.crashed
                    + m2.fault.dropped
                    + m2.fault.delayed
                    + m2.fault.crashed;
                (
                    r.size(),
                    r.total_rounds(),
                    injected,
                    m.fault.retransmitted + m2.fault.retransmitted,
                    m.fault.degraded + m2.fault.degraded,
                    is_vertex_cover_on_square(&g, &r.cover),
                )
            })
    };
    let mvc_clean = mvc(&cfg(FaultSpec::none(), 1, None)).expect("clean MVC").0;
    row_cells("mvc(eps=0.5)", mvc, &t, mvc_clean);

    let mds = |c: &RunConfig| -> Cell {
        g2_mds_congest_cfg(&g, 2, SEED, c).ok().map(|r| {
            let injected =
                r.metrics.fault.dropped + r.metrics.fault.delayed + r.metrics.fault.crashed;
            (
                r.size(),
                r.metrics.rounds,
                injected,
                r.metrics.fault.retransmitted,
                r.metrics.fault.degraded,
                is_dominating_set_on_square(&g, &r.dominating_set),
            )
        })
    };
    let mds_clean = mds(&cfg(FaultSpec::none(), 1, None)).expect("clean MDS").0;
    row_cells("mds(theorem28)", mds, &t, mds_clean);

    let words = recommended_ruling_set_memory_words(&g);
    let rs = |c: &RunConfig| -> Cell {
        g2_ruling_set_mpc_cfg(&g, words, c).ok().map(|r| {
            let injected = r.mpc.fault.dropped + r.mpc.fault.delayed + r.mpc.fault.crashed;
            (
                r.in_r.iter().filter(|&&b| b).count(),
                r.mpc.rounds,
                injected,
                r.mpc.fault.retransmitted,
                r.mpc.fault.degraded,
                is_dominating_set_on_square(&g, &r.in_r),
            )
        })
    };
    let rs_clean = rs(&cfg(FaultSpec::none(), 1, None))
        .expect("clean ruling set")
        .0;
    row_cells("ruling_set(mpc)", rs, &t, rs_clean);

    println!(
        "\nstall = round budget exhausted ({MAX_ROUNDS} app rounds raw, x{ARQ_TICK_FACTOR} \
         ticks reliable): raw convergecast phases wait forever for omitted messages, and \
         ARQ-without-timeouts waits on links severed by crashes. The arq rows recover \
         every drop/delay cell bit-identically (asserted); the arq+timeout rows converge \
         everywhere with valid output (asserted), degrading approximation instead — the \
         `degraded` column counts the phases that fell back to a partial aggregate."
    );
}
