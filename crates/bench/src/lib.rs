//! Shared harness utilities for the experiment binaries (E1–E12).
//!
//! Each `src/bin/exp_*.rs` binary regenerates one of the paper's
//! quantitative claims (the paper is a theory paper, so "tables and
//! figures" are theorem statements and lower-bound constructions — see
//! `EXPERIMENTS.md` at the workspace root for the index). The binaries
//! print fixed-width tables to stdout; everything is seeded and
//! deterministic.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod trace;

use pga_graph::matching::maximal_matching;
use pga_graph::power::square;
use pga_graph::Graph;

/// A minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table and prints its header row.
    pub fn new(headers: &[&str]) -> Self {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(10)).collect();
        let t = Table { headers, widths };
        t.print_header();
        t
    }

    fn print_header(&self) {
        let row: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", row.join("  "));
        println!("{}", "-".repeat(row.join("  ").len()));
    }

    /// Prints one row of already-formatted cells.
    pub fn row(&self, cells: &[String]) {
        let row: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", row.join("  "));
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// A cheap lower bound on `MVC(G²)`: a maximal matching in the square.
/// Used to bound approximation ratios at sizes where the exact solver is
/// out of reach.
pub fn square_mvc_lower_bound(g: &Graph) -> usize {
    maximal_matching(&square(g)).len()
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// The [`RunConfig`](pga_congest::RunConfig) the experiment binaries
/// run under: one shard per available CPU and the packed-codec message
/// plane (bit-identical to the sequential enum plane, just faster).
pub fn exp_cfg() -> pga_congest::RunConfig {
    pga_congest::RunConfig::new().parallel_auto().codec(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::generators;

    #[test]
    fn lower_bound_below_optimum() {
        let g = generators::cycle(12);
        let lb = square_mvc_lower_bound(&g);
        let opt = pga_exact::vc::mvc_size(&square(&g));
        assert!(lb <= opt);
        assert!(lb >= opt / 2, "matching is a 2-approximation lower bound");
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(1.0 / 3.0), "0.333");
    }
}
