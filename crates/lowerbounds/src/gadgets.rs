//! The gadget vocabulary of the paper's lower-bound constructions.
//!
//! All constructions start from a base graph and replace selected edges
//! with small gadgets so that the replaced edge reappears in the *square*
//! while the vertex count stays near-linear:
//!
//! * [`insert_path_vertex`] — the weight-0 single-vertex path gadget `P_e`
//!   of Theorem 20 (Figure 2);
//! * [`attach_dangling_path`] — the 3-vertex dangling path `DP_e` of
//!   Theorem 22 (Figure 3) and Section 8;
//! * 5-vertex dangling paths for the MDS constructions of Theorem 31
//!   (Figure 5);
//! * merged gadgets (Lemma 36): many dangling paths sharing one tail.

use pga_graph::{GraphBuilder, NodeId};

/// Inserts the single-vertex path gadget of Figure 2: a new vertex `p_e`
/// adjacent to both endpoints (the edge itself is *not* added — `u` and
/// `v` become adjacent in the square instead). Returns `p_e`.
pub fn insert_path_vertex(b: &mut GraphBuilder, u: NodeId, v: NodeId) -> NodeId {
    let p = b.add_node();
    b.add_edge(p, u);
    b.add_edge(p, v);
    p
}

/// Attaches the dangling path gadget `DP_e` of Figure 3: vertices
/// `DP[1] — DP[2] — DP[3]` with `DP[1]` adjacent to both endpoints.
/// Returns `[DP[1], DP[2], DP[3]]`.
pub fn attach_dangling_path(b: &mut GraphBuilder, u: NodeId, v: NodeId) -> [NodeId; 3] {
    let p1 = b.add_node();
    let p2 = b.add_node();
    let p3 = b.add_node();
    b.add_edge(p1, u);
    b.add_edge(p1, v);
    b.add_edge(p1, p2);
    b.add_edge(p2, p3);
    [p1, p2, p3]
}

/// Attaches the 5-vertex dangling path gadget of Figure 5 (Theorem 31).
/// Returns `[DP[1], ..., DP[5]]`.
pub fn attach_dangling_path5(b: &mut GraphBuilder, u: NodeId, v: NodeId) -> [NodeId; 5] {
    let p: Vec<NodeId> = (0..5).map(|_| b.add_node()).collect();
    b.add_edge(p[0], u);
    b.add_edge(p[0], v);
    for w in p.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    [p[0], p[1], p[2], p[3], p[4]]
}

/// Attaches a *shared* path gadget (3-vertex) hanging off a single vertex;
/// the gadget's head later receives the shared input edges. Returns
/// `[A[1], A[2], A[3]]`.
pub fn attach_shared_path(b: &mut GraphBuilder, host: NodeId) -> [NodeId; 3] {
    let p1 = b.add_node();
    let p2 = b.add_node();
    let p3 = b.add_node();
    b.add_edge(p1, host);
    b.add_edge(p1, p2);
    b.add_edge(p2, p3);
    [p1, p2, p3]
}

/// Attaches a shared 5-vertex path gadget hanging off a single vertex.
pub fn attach_shared_path5(b: &mut GraphBuilder, host: NodeId) -> [NodeId; 5] {
    let p: Vec<NodeId> = (0..5).map(|_| b.add_node()).collect();
    b.add_edge(p[0], host);
    for w in p.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    [p[0], p[1], p[2], p[3], p[4]]
}

/// A merged path gadget (Lemma 36): the common tail `[3] — [4] — [5]`.
/// Individual 2-vertex stubs attach to `[3]` via [`MergedGadget::attach`].
#[derive(Clone, Debug)]
pub struct MergedGadget {
    /// The shared third vertex (weight 0 in the Theorem 35 construction).
    pub p3: NodeId,
    /// The shared fourth vertex.
    pub p4: NodeId,
    /// The shared fifth vertex.
    pub p5: NodeId,
}

impl MergedGadget {
    /// Creates the common tail.
    pub fn new(b: &mut GraphBuilder) -> Self {
        let p3 = b.add_node();
        let p4 = b.add_node();
        let p5 = b.add_node();
        b.add_edge(p3, p4);
        b.add_edge(p4, p5);
        MergedGadget { p3, p4, p5 }
    }

    /// Attaches one constituent gadget: `host — [1] — [2] — common [3]`.
    /// Returns `[P[1], P[2]]`.
    pub fn attach(&self, b: &mut GraphBuilder, host: NodeId) -> [NodeId; 2] {
        let p1 = b.add_node();
        let p2 = b.add_node();
        b.add_edge(host, p1);
        b.add_edge(p1, p2);
        b.add_edge(p2, self.p3);
        [p1, p2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::power::square;

    fn base_two() -> (GraphBuilder, NodeId, NodeId) {
        (GraphBuilder::new(2), NodeId(0), NodeId(1))
    }

    #[test]
    fn path_vertex_restores_edge_in_square() {
        let (mut b, u, v) = base_two();
        let p = insert_path_vertex(&mut b, u, v);
        let g = b.build();
        assert!(!g.has_edge(u, v), "the direct edge is not added");
        let g2 = square(&g);
        assert!(g2.has_edge(u, v), "but it exists in the square");
        assert!(g2.has_edge(p, u) && g2.has_edge(p, v));
    }

    #[test]
    fn dangling_path_square_structure() {
        let (mut b, u, v) = base_two();
        let [p1, p2, p3] = attach_dangling_path(&mut b, u, v);
        let g = b.build();
        let g2 = square(&g);
        // The replaced edge reappears.
        assert!(g2.has_edge(u, v));
        // Gadget forms a triangle in the square with p3 pendant-ish:
        assert!(g2.has_edge(p1, p3) && g2.has_edge(p1, p2) && g2.has_edge(p2, p3));
        // p3 is more than 2 hops from the endpoints.
        assert!(!g2.has_edge(p3, u) && !g2.has_edge(p3, v));
        // p2 reaches the endpoints in the square (distance 2 via p1).
        assert!(g2.has_edge(p2, u) && g2.has_edge(p2, v));
    }

    #[test]
    fn dangling_path5_leaf_isolation() {
        let (mut b, u, v) = base_two();
        let p = attach_dangling_path5(&mut b, u, v);
        let g2 = square(&b.build());
        assert!(g2.has_edge(u, v));
        // p[4] only sees p[2], p[3] in the square.
        assert_eq!(g2.degree(p[4]), 2);
        assert!(g2.has_edge(p[4], p[3]) && g2.has_edge(p[4], p[2]));
    }

    #[test]
    fn shared_path_reaches_host_neighbors_in_square() {
        let mut b = GraphBuilder::new(3);
        // host 0 adjacent to 1; the shared head also gets an input edge to 2.
        b.add_edge(NodeId(0), NodeId(1));
        let [a1, _a2, _a3] = attach_shared_path(&mut b, NodeId(0));
        b.add_edge(a1, NodeId(2));
        let g2 = square(&b.build());
        // The shared head connects host 0 and input 2 in the square.
        assert!(g2.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn merged_gadget_tail_covers_all_stubs_in_square() {
        let mut b = GraphBuilder::new(3);
        let m = MergedGadget::new(&mut b);
        let stubs: Vec<[NodeId; 2]> = (0..3).map(|i| m.attach(&mut b, NodeId(i as u32))).collect();
        let g2 = square(&b.build());
        // Lemma 36: [3] dominates every stub's [1] and [2] in the square.
        for s in &stubs {
            assert!(g2.has_edge(m.p3, s[0]), "p3 within 2 hops of every P[1]");
            assert!(g2.has_edge(m.p3, s[1]));
        }
        assert!(g2.has_edge(m.p3, m.p5));
    }

    #[test]
    fn merged_gadget_keeps_hosts_apart() {
        // Two hosts sharing a merged gadget must NOT become adjacent in
        // the square (their stubs are distinct).
        let mut b = GraphBuilder::new(2);
        let m = MergedGadget::new(&mut b);
        m.attach(&mut b, NodeId(0));
        m.attach(&mut b, NodeId(1));
        let g = b.build();
        let g2 = square(&g);
        assert!(!g2.has_edge(NodeId(0), NodeId(1)));
    }
}
