//! The \[CKP17\] vertex-cover lower-bound family `G_{x,y}` (Figure 1).
//!
//! The family underlies the paper's Theorems 20 and 22. Reconstructed
//! from the paper's description:
//!
//! * four **row cliques** `A₁, A₂, B₁, B₂` of size `k` each;
//! * `2 log₂ k` **bit gadgets**, 4-cycles `t_{A}ⁱ — f_{A}ⁱ — t_{B}ⁱ —
//!   f_{B}ⁱ — t_{A}ⁱ` (one group for `(A₁, B₁)`, one for `(A₂, B₂)`); the
//!   only 2-vertex covers of a 4-cycle are its antipodal pairs, here
//!   `{t_A, t_B}` and `{f_A, f_B}` — covering a bit consistently on both
//!   sides;
//! * row vertex `a₁ⁱ` is wired to `t^j` when bit `j` of `i−1` is 1 and to
//!   `f^j` otherwise (same for the other rows with their gadget group);
//! * input edges `{a₁ⁱ, a₂ʲ}` iff `x_{ij} = 0` and `{b₁ⁱ, b₂ʲ}` iff
//!   `y_{ij} = 0`.
//!
//! **Predicate** (verified exhaustively for `k = 2` and randomly for
//! `k = 4` in the tests): `G_{x,y}` has a vertex cover of size
//! `W = 4(k−1) + 4 log₂ k` **iff** `DISJ(x, y) = false`. A budget-`W`
//! cover must leave one vertex per clique uncovered and pick one antipodal
//! pair per 4-cycle; the wiring forces the uncovered `A₁`/`B₁` indices to
//! coincide (likewise `A₂`/`B₂`), and the uncovered pair's input edges
//! must be absent — which says `x_{ij} = y_{ij} = 1` for some `(i, j)`.

use crate::disjointness::{DisjInstance, PartitionedGraph};
use pga_graph::{Graph, GraphBuilder, NodeId};

/// Vertex layout of a constructed `G_{x,y}`.
#[derive(Clone, Debug)]
pub struct Ckp17Graph {
    /// The graph with its Alice/Bob partition.
    pub partitioned: PartitionedGraph,
    /// `k` (number of row vertices per clique; power of two, ≥ 2).
    pub k: usize,
    /// Row-vertex ids: `rows[c][i]` for clique `c ∈ {A1, A2, B1, B2}`.
    pub rows: [Vec<NodeId>; 4],
    /// Bit-gadget ids `(t_A, f_A, t_B, f_B)` per bit, for group 1
    /// (`A₁/B₁`).
    pub bits1: Vec<(NodeId, NodeId, NodeId, NodeId)>,
    /// Bit-gadget ids for group 2 (`A₂/B₂`).
    pub bits2: Vec<(NodeId, NodeId, NodeId, NodeId)>,
}

/// Index constants into [`Ckp17Graph::rows`].
pub mod row {
    /// Clique `A₁`.
    pub const A1: usize = 0;
    /// Clique `A₂`.
    pub const A2: usize = 1;
    /// Clique `B₁`.
    pub const B1: usize = 2;
    /// Clique `B₂`.
    pub const B2: usize = 3;
}

impl Ckp17Graph {
    /// The predicate threshold `W = 4(k−1) + 4 log₂ k`.
    pub fn cover_budget(&self) -> usize {
        4 * (self.k - 1) + 4 * self.k.ilog2() as usize
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }

    /// Edges incident on bit-gadget vertices (the ones the `H_{x,y}`
    /// constructions replace by path gadgets), as vertex pairs.
    pub fn bit_incident_edges(&self) -> Vec<(NodeId, NodeId)> {
        let is_bit = self.bit_vertex_set();
        self.graph()
            .edges()
            .filter(|&(u, v)| is_bit[u.index()] || is_bit[v.index()])
            .collect()
    }

    /// Membership vector of bit-gadget vertices.
    pub fn bit_vertex_set(&self) -> Vec<bool> {
        let mut is_bit = vec![false; self.graph().num_nodes()];
        for &(t_a, f_a, t_b, f_b) in self.bits1.iter().chain(&self.bits2) {
            for v in [t_a, f_a, t_b, f_b] {
                is_bit[v.index()] = true;
            }
        }
        is_bit
    }

    /// Input edges (the `x`/`y`-dependent row-to-row edges).
    pub fn input_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (r1, r2) in [(row::A1, row::A2), (row::B1, row::B2)] {
            for &u in &self.rows[r1] {
                for &v in &self.rows[r2] {
                    if self.graph().has_edge(u, v) {
                        out.push((u, v));
                    }
                }
            }
        }
        out
    }
}

/// Builds `G_{x,y}` for the given disjointness instance.
///
/// # Panics
///
/// Panics unless `k` is a power of two with `k ≥ 2`.
pub fn build(inst: &DisjInstance) -> Ckp17Graph {
    let k = inst.k;
    assert!(
        k >= 2 && k.is_power_of_two(),
        "k must be a power of two ≥ 2"
    );
    let logk = k.ilog2() as usize;

    let mut b = GraphBuilder::new(0);
    let rows: [Vec<NodeId>; 4] = std::array::from_fn(|_| (0..k).map(|_| b.add_node()).collect());
    for r in &rows {
        b.add_clique(r);
    }

    // Bit gadgets: 4-cycles t_A — f_A — t_B — f_B — t_A.
    let make_bits = |b: &mut GraphBuilder| -> Vec<(NodeId, NodeId, NodeId, NodeId)> {
        (0..logk)
            .map(|_| {
                let t_a = b.add_node();
                let f_a = b.add_node();
                let t_b = b.add_node();
                let f_b = b.add_node();
                b.add_edge(t_a, f_a);
                b.add_edge(f_a, t_b);
                b.add_edge(t_b, f_b);
                b.add_edge(f_b, t_a);
                (t_a, f_a, t_b, f_b)
            })
            .collect()
    };
    let bits1 = make_bits(&mut b);
    let bits2 = make_bits(&mut b);

    // Row-to-bit wiring: a^i is connected to t^j iff bit j of i−1 is 1.
    let wire = |b: &mut GraphBuilder,
                vertices: &[NodeId],
                bits: &[(NodeId, NodeId, NodeId, NodeId)],
                a_side: bool| {
        for (i, &v) in vertices.iter().enumerate() {
            for (j, &(t_a, f_a, t_b, f_b)) in bits.iter().enumerate() {
                let (t, f) = if a_side { (t_a, f_a) } else { (t_b, f_b) };
                if i >> j & 1 == 1 {
                    b.add_edge(v, t);
                } else {
                    b.add_edge(v, f);
                }
            }
        }
    };
    wire(&mut b, &rows[row::A1], &bits1, true);
    wire(&mut b, &rows[row::B1], &bits1, false);
    wire(&mut b, &rows[row::A2], &bits2, true);
    wire(&mut b, &rows[row::B2], &bits2, false);

    // Input edges: {a₁ⁱ, a₂ʲ} iff x_{ij} = 0; {b₁ⁱ, b₂ʲ} iff y_{ij} = 0.
    for i in 0..k {
        for j in 0..k {
            if !inst.x_bit(i, j) {
                b.add_edge(rows[row::A1][i], rows[row::A2][j]);
            }
            if !inst.y_bit(i, j) {
                b.add_edge(rows[row::B1][i], rows[row::B2][j]);
            }
        }
    }

    let graph = b.build();
    // Alice owns the A rows and the A-side bit vertices.
    let mut alice = vec![false; graph.num_nodes()];
    for &v in rows[row::A1].iter().chain(&rows[row::A2]) {
        alice[v.index()] = true;
    }
    for &(t_a, f_a, _tb, _fb) in bits1.iter().chain(&bits2) {
        alice[t_a.index()] = true;
        alice[f_a.index()] = true;
    }

    Ckp17Graph {
        partitioned: PartitionedGraph { graph, alice },
        k,
        rows,
        bits1,
        bits2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::vc::solve_mvc_with_budget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn predicate_holds(inst: &DisjInstance) -> bool {
        let g = build(inst);
        solve_mvc_with_budget(g.graph(), g.cover_budget()).is_some()
    }

    #[test]
    fn vertex_and_cut_counts() {
        for k in [2usize, 4, 8] {
            let mut rng = StdRng::seed_from_u64(k as u64);
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let g = build(&inst);
            let logk = k.ilog2() as usize;
            assert_eq!(g.graph().num_nodes(), 4 * k + 8 * logk);
            // Cut: exactly the two crossing edges per 4-cycle.
            assert_eq!(g.partitioned.cut_size(), 4 * logk, "k={k}");
        }
    }

    #[test]
    fn predicate_matches_disjointness_exhaustive_k2() {
        // All 256 instances at k = 2: the paper's Figure-1 predicate.
        for inst in DisjInstance::enumerate_all(2) {
            assert_eq!(
                predicate_holds(&inst),
                !inst.disjoint(),
                "x={:?} y={:?}",
                inst.x,
                inst.y
            );
        }
    }

    #[test]
    fn predicate_matches_disjointness_random_k4() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..6 {
            let yes = DisjInstance::random_intersecting(4, 0.4, &mut rng);
            assert!(predicate_holds(&yes), "intersecting instance must fit W");
            let no = DisjInstance::random_disjoint(4, 0.4, &mut rng);
            assert!(!predicate_holds(&no), "disjoint instance must exceed W");
        }
    }

    #[test]
    fn input_locality() {
        // Definition 18: changing x only changes Alice-side edges.
        let mut rng = StdRng::seed_from_u64(23);
        let base = DisjInstance::random(4, 0.5, &mut rng);
        let mut x2 = base.clone();
        x2.x = DisjInstance::random(4, 0.5, &mut rng).x;
        let g1 = build(&base);
        let g2 = build(&x2);
        assert!(g1.partitioned.input_locality_ok(&g2.partitioned, true));

        let mut y2 = base.clone();
        y2.y = DisjInstance::random(4, 0.5, &mut rng).y;
        let g3 = build(&y2);
        assert!(g1.partitioned.input_locality_ok(&g3.partitioned, false));
    }

    #[test]
    fn bit_incident_edge_count() {
        let mut rng = StdRng::seed_from_u64(29);
        for k in [2usize, 4] {
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let g = build(&inst);
            let logk = k.ilog2() as usize;
            // 4k·log k row-to-bit edges plus 8·log k cycle edges.
            assert_eq!(g.bit_incident_edges().len(), 4 * k * logk + 8 * logk);
        }
    }

    #[test]
    fn input_edges_match_bits() {
        let inst = DisjInstance::new(
            2,
            vec![true, false, true, true],
            vec![false, false, false, false],
        );
        let g = build(&inst);
        // x has one 0 at (0,1) → one A-side input edge; y all 0 → 4 B-side.
        assert_eq!(g.input_edges().len(), 1 + 4);
    }

    #[test]
    fn all_ones_both_sides_has_small_cover() {
        // x = y = all-ones: every (i,j) is a witness; no input edges at
        // all, so the budget cover exists trivially.
        let k = 2;
        let inst = DisjInstance::new(k, vec![true; 4], vec![true; 4]);
        assert!(predicate_holds(&inst));
    }
}
