//! Figure 6: the set gadget `G_MDS` built from an `r`-covering set system
//! (Definition 37, Lemmas 38 and 39).
//!
//! A collection `S₁, …, S_T ⊆ U = {1..ℓ}` has the **`r`-covering
//! property** if every choice of at most `r` sets from `{Sᵢ, S̄ᵢ}` that
//! avoids complementary pairs leaves some element of `U` uncovered.
//! Nisan's probabilistic construction gives such systems with
//! `T = e^{ℓ/(r·2^r)}`; for the small verification instances this module
//! *searches* for a system and certifies the property exhaustively — the
//! certificate is what the lower-bound argument consumes, not the
//! asymptotics.
//!
//! The gadget graph: set vertices `Sⱼ` adjacent to `αᵢ` for `i ∈ Sⱼ`,
//! complement vertices `S̄ⱼ` adjacent to `βᵢ` for `i ∉ Sⱼ`, edges
//! `{αᵢ, βᵢ}`, and two hubs `α` (adjacent to all `Sⱼ`) and `β` (to all
//! `S̄ⱼ`). Element and hub vertices carry weight `r`; set vertices carry
//! weight 1. **Lemma 39** (verified): the square has a dominating set of
//! weight 2 — any complementary pair — while any dominating set avoiding
//! complementary pairs and heavy vertices costs at least `r`.

use pga_graph::{Graph, GraphBuilder, NodeId, VertexWeights};
use rand::{Rng, RngExt};

/// An `r`-covering set system over universe `{0, …, ℓ−1}`.
#[derive(Clone, Debug)]
pub struct SetSystem {
    /// Universe size `ℓ`.
    pub universe: usize,
    /// The sets, as membership vectors of length `ℓ`.
    pub sets: Vec<Vec<bool>>,
    /// The certified covering parameter `r`.
    pub r: usize,
}

impl SetSystem {
    /// Number of sets `T`.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Checks the `r`-covering property exhaustively (Definition 37):
    /// every collection of at most `r` signed sets without a
    /// complementary pair leaves some element uncovered.
    pub fn check_r_covering(&self, r: usize) -> bool {
        fn rec(
            sys: &SetSystem,
            idx: usize,
            chosen: &mut Vec<(usize, bool)>,
            budget: usize,
        ) -> bool {
            if chosen.len() == budget || idx == sys.sets.len() {
                if chosen.is_empty() {
                    return true;
                }
                // Some element must be uncovered.
                return (0..sys.universe).any(|e| {
                    chosen.iter().all(|&(s, comp)| {
                        let member = sys.sets[s][e];
                        if comp {
                            member // the complement does not contain e
                        } else {
                            !member
                        }
                    })
                });
            }
            // Skip idx; or take Sᵢ; or take S̄ᵢ (never both).
            if !rec(sys, idx + 1, chosen, budget) {
                return false;
            }
            for comp in [false, true] {
                chosen.push((idx, comp));
                let ok = rec(sys, idx + 1, chosen, budget);
                chosen.pop();
                if !ok {
                    return false;
                }
            }
            true
        }
        for budget in 1..=r {
            if !rec(self, 0, &mut Vec::new(), budget) {
                return false;
            }
        }
        true
    }

    /// Searches for an `r`-covering system with `t` sets over a universe
    /// of size `universe` by repeated random sampling plus exhaustive
    /// certification. Returns `None` if no certified system is found
    /// within `attempts` tries.
    pub fn search(
        universe: usize,
        t: usize,
        r: usize,
        attempts: usize,
        rng: &mut impl Rng,
    ) -> Option<SetSystem> {
        for _ in 0..attempts {
            let sets: Vec<Vec<bool>> = (0..t)
                .map(|_| (0..universe).map(|_| rng.random::<bool>()).collect())
                .collect();
            let sys = SetSystem { universe, sets, r };
            if sys.check_r_covering(r) {
                return Some(sys);
            }
        }
        None
    }
}

/// The constructed set gadget with vertex bookkeeping.
#[derive(Clone, Debug)]
pub struct SetGadget {
    /// The gadget graph.
    pub graph: Graph,
    /// Set vertices `S₁, …, S_T`.
    pub sets: Vec<NodeId>,
    /// Complement vertices `S̄₁, …, S̄_T`.
    pub complements: Vec<NodeId>,
    /// Element vertices `αᵢ`.
    pub alphas: Vec<NodeId>,
    /// Element vertices `βᵢ`.
    pub betas: Vec<NodeId>,
    /// Hub `α` (adjacent to all `Sⱼ`).
    pub alpha_hub: NodeId,
    /// Hub `β` (adjacent to all `S̄ⱼ`).
    pub beta_hub: NodeId,
    /// Vertex weights (`heavy` on elements and hubs, 1 on sets).
    pub weights: VertexWeights,
    /// The heavy weight.
    pub heavy: u64,
}

/// Builds the standalone Figure-6 gadget from a certified set system,
/// with `heavy` as the weight of element and hub vertices.
pub fn build_gadget(sys: &SetSystem, heavy: u64) -> SetGadget {
    let mut b = GraphBuilder::new(0);
    let mut weights = Vec::new();
    let t = sys.len();
    let ell = sys.universe;

    let add = |b: &mut GraphBuilder, weights: &mut Vec<u64>, w: u64| {
        weights.push(w);
        b.add_node()
    };
    let sets: Vec<NodeId> = (0..t).map(|_| add(&mut b, &mut weights, 1)).collect();
    let complements: Vec<NodeId> = (0..t).map(|_| add(&mut b, &mut weights, 1)).collect();
    let alphas: Vec<NodeId> = (0..ell).map(|_| add(&mut b, &mut weights, heavy)).collect();
    let betas: Vec<NodeId> = (0..ell).map(|_| add(&mut b, &mut weights, heavy)).collect();
    let alpha_hub = add(&mut b, &mut weights, heavy);
    let beta_hub = add(&mut b, &mut weights, heavy);

    for i in 0..ell {
        b.add_edge(alphas[i], betas[i]);
    }
    for j in 0..t {
        for i in 0..ell {
            if sys.sets[j][i] {
                b.add_edge(sets[j], alphas[i]);
            } else {
                b.add_edge(complements[j], betas[i]);
            }
        }
        b.add_edge(alpha_hub, sets[j]);
        b.add_edge(beta_hub, complements[j]);
    }

    SetGadget {
        graph: b.build(),
        sets,
        complements,
        alphas,
        betas,
        alpha_hub,
        beta_hub,
        weights: VertexWeights::from_vec(weights),
        heavy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::mds::{mwds_weight, solve_mwds_with_budget};
    use pga_graph::cover::{is_dominating_set, membership};
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_system(r: usize) -> SetSystem {
        let mut rng = StdRng::seed_from_u64(100 + r as u64);
        let ell = (8 * (1 << r)).min(48);
        SetSystem::search(ell, 4, r, 200, &mut rng)
            .expect("a small r-covering system should be found")
    }

    #[test]
    fn covering_property_certified() {
        for r in [2usize, 3] {
            let sys = sample_system(r);
            assert!(sys.check_r_covering(r));
            assert_eq!(sys.len(), 4);
        }
    }

    #[test]
    fn covering_property_detects_violation() {
        // S₁ ∪ S₂ = U: not even 2-covering.
        let sys = SetSystem {
            universe: 4,
            sets: vec![
                vec![true, true, true, false],
                vec![false, false, false, true],
            ],
            r: 2,
        };
        assert!(sys.check_r_covering(1));
        assert!(!sys.check_r_covering(2));
    }

    #[test]
    fn single_set_system_trivially_1_covering() {
        let sys = SetSystem {
            universe: 4,
            sets: vec![vec![true, true, false, false]],
            r: 1,
        };
        assert!(sys.check_r_covering(1));
    }

    #[test]
    fn lemma39_pair_dominates_square_with_weight_2() {
        let sys = sample_system(2);
        let gadget = build_gadget(&sys, 4);
        let g2 = square(&gadget.graph);
        for j in 0..sys.len() {
            let ds = membership(
                gadget.graph.num_nodes(),
                &[gadget.sets[j], gadget.complements[j]],
            );
            assert!(
                is_dominating_set(&g2, &ds),
                "pair (S_{j}, comp_{j}) must dominate the square"
            );
        }
        assert_eq!(mwds_weight(&g2, &gadget.weights), 2);
    }

    #[test]
    fn lemma39_weight_2_optimum_is_a_pair() {
        let sys = sample_system(2);
        let gadget = build_gadget(&sys, 4);
        let g2 = square(&gadget.graph);
        let ds = solve_mwds_with_budget(&g2, &gadget.weights, 2).expect("weight-2 solution exists");
        let chosen: Vec<usize> = ds
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        let has_pair = (0..sys.len()).any(|j| {
            chosen.contains(&gadget.sets[j].index())
                && chosen.contains(&gadget.complements[j].index())
        });
        assert!(has_pair, "weight-2 optimum must be a complementary pair");
    }

    #[test]
    fn set_vertices_two_hops_apart_via_hubs() {
        // "All the Sᵢ's are two hops away from each other": the hub α.
        let sys = sample_system(2);
        let gadget = build_gadget(&sys, 4);
        let g2 = square(&gadget.graph);
        for a in 0..sys.len() {
            for b in (a + 1)..sys.len() {
                assert!(g2.has_edge(gadget.sets[a], gadget.sets[b]));
                assert!(g2.has_edge(gadget.complements[a], gadget.complements[b]));
            }
        }
    }
}
