//! The \[BCD+19\] dominating-set lower-bound family `G_{x,y}` (Figure 4).
//!
//! Reconstructed from the paper's description:
//!
//! * four **row sets** `A₁, A₂, B₁, B₂` of `k` independent vertices;
//! * `2 log₂ k` **bit gadgets**, 6-cycles `t_A — f_A — u_A — t_B — f_B —
//!   u_B — t_A` (group 1 for `(A₁, B₁)`, group 2 for `(A₂, B₂)`); the
//!   `u` vertices have no outside edges, so every 6-cycle forces at least
//!   two dominators, and the antipodal pairs `{t_A, t_B}`, `{f_A, f_B}`,
//!   `{u_A, u_B}` each dominate the whole cycle;
//! * row vertex `a₁ⁱ` is wired to the **complement** of the binary
//!   representation of `i−1`: to `t^j` when bit `j` is 0 and `f^j` when
//!   it is 1 (`a₁¹` is adjacent to all `t` vertices, as in the paper);
//! * input edges `{a₁ⁱ, a₂ʲ}` iff `x_{ij} = 1` and `{b₁ⁱ, b₂ʲ}` iff
//!   `y_{ij} = 1` (note: **1**, the opposite convention from the MVC
//!   family).
//!
//! **Predicate** (verified exhaustively at `k = 2`, randomly at `k = 4`):
//! `G_{x,y}` has a dominating set of size `4 log₂ k + 2` **iff**
//! `DISJ(x, y) = false`. Choosing antipodal pairs by the bits of a
//! witness `(i, j)` dominates every row vertex except `a₁ⁱ, b₁ⁱ, a₂ʲ,
//! b₂ʲ`; the two extra vertices `a₁ⁱ` and `b₁ⁱ` dominate themselves and —
//! through the input edges that exist exactly when `x_{ij} = y_{ij} = 1`
//! — the remaining `a₂ʲ` and `b₂ʲ`.

use crate::disjointness::{DisjInstance, PartitionedGraph};
use pga_graph::{Graph, GraphBuilder, NodeId};

/// Vertex layout of a constructed BCD19 `G_{x,y}`.
#[derive(Clone, Debug)]
pub struct Bcd19Graph {
    /// The graph with its Alice/Bob partition.
    pub partitioned: PartitionedGraph,
    /// `k`.
    pub k: usize,
    /// Row-vertex ids per row set (`A₁, A₂, B₁, B₂`).
    pub rows: [Vec<NodeId>; 4],
    /// Group-1 bit gadgets `(t_A, f_A, u_A, t_B, f_B, u_B)`.
    pub bits1: Vec<(NodeId, NodeId, NodeId, NodeId, NodeId, NodeId)>,
    /// Group-2 bit gadgets.
    pub bits2: Vec<(NodeId, NodeId, NodeId, NodeId, NodeId, NodeId)>,
}

/// Row indices (same convention as [`crate::ckp17::row`]).
pub mod row {
    /// Row set `A₁`.
    pub const A1: usize = 0;
    /// Row set `A₂`.
    pub const A2: usize = 1;
    /// Row set `B₁`.
    pub const B1: usize = 2;
    /// Row set `B₂`.
    pub const B2: usize = 3;
}

impl Bcd19Graph {
    /// The predicate threshold `4 log₂ k + 2`.
    pub fn ds_budget(&self) -> usize {
        4 * self.k.ilog2() as usize + 2
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }

    /// Membership vector of bit-gadget vertices.
    pub fn bit_vertex_set(&self) -> Vec<bool> {
        let mut is_bit = vec![false; self.graph().num_nodes()];
        for &(a, b, c, d, e, f) in self.bits1.iter().chain(&self.bits2) {
            for v in [a, b, c, d, e, f] {
                is_bit[v.index()] = true;
            }
        }
        is_bit
    }

    /// Edges incident on bit-gadget vertices.
    pub fn bit_incident_edges(&self) -> Vec<(NodeId, NodeId)> {
        let is_bit = self.bit_vertex_set();
        self.graph()
            .edges()
            .filter(|&(u, v)| is_bit[u.index()] || is_bit[v.index()])
            .collect()
    }

    /// Whether `{u, v}` is an input (x/y-dependent) edge.
    pub fn is_input_edge(&self, u: NodeId, v: NodeId) -> bool {
        let side = |r1: usize, r2: usize| {
            (self.rows[r1].contains(&u) && self.rows[r2].contains(&v))
                || (self.rows[r1].contains(&v) && self.rows[r2].contains(&u))
        };
        side(row::A1, row::A2) || side(row::B1, row::B2)
    }
}

/// Builds the Figure-4 family for a disjointness instance.
///
/// # Panics
///
/// Panics unless `k` is a power of two with `k ≥ 2`.
pub fn build(inst: &DisjInstance) -> Bcd19Graph {
    let k = inst.k;
    assert!(
        k >= 2 && k.is_power_of_two(),
        "k must be a power of two ≥ 2"
    );
    let logk = k.ilog2() as usize;

    let mut b = GraphBuilder::new(0);
    let rows: [Vec<NodeId>; 4] = std::array::from_fn(|_| (0..k).map(|_| b.add_node()).collect());

    // 6-cycles t_A — f_A — u_A — t_B — f_B — u_B — t_A.
    let make_bits = |b: &mut GraphBuilder| {
        (0..logk)
            .map(|_| {
                let t_a = b.add_node();
                let f_a = b.add_node();
                let u_a = b.add_node();
                let t_b = b.add_node();
                let f_b = b.add_node();
                let u_b = b.add_node();
                b.add_path(&[t_a, f_a, u_a, t_b, f_b, u_b]);
                b.add_edge(u_b, t_a);
                (t_a, f_a, u_a, t_b, f_b, u_b)
            })
            .collect::<Vec<_>>()
    };
    let bits1 = make_bits(&mut b);
    let bits2 = make_bits(&mut b);

    // Complement wiring: a^i — t^j iff bit j of i−1 is 0.
    let wire = |b: &mut GraphBuilder,
                vertices: &[NodeId],
                bits: &[(NodeId, NodeId, NodeId, NodeId, NodeId, NodeId)],
                a_side: bool| {
        for (i, &v) in vertices.iter().enumerate() {
            for (j, &(t_a, f_a, _ua, t_b, f_b, _ub)) in bits.iter().enumerate() {
                let (t, f) = if a_side { (t_a, f_a) } else { (t_b, f_b) };
                if i >> j & 1 == 0 {
                    b.add_edge(v, t);
                } else {
                    b.add_edge(v, f);
                }
            }
        }
    };
    wire(&mut b, &rows[row::A1], &bits1, true);
    wire(&mut b, &rows[row::B1], &bits1, false);
    wire(&mut b, &rows[row::A2], &bits2, true);
    wire(&mut b, &rows[row::B2], &bits2, false);

    // Input edges iff the bit is 1.
    for i in 0..k {
        for j in 0..k {
            if inst.x_bit(i, j) {
                b.add_edge(rows[row::A1][i], rows[row::A2][j]);
            }
            if inst.y_bit(i, j) {
                b.add_edge(rows[row::B1][i], rows[row::B2][j]);
            }
        }
    }

    let graph = b.build();
    let mut alice = vec![false; graph.num_nodes()];
    for &v in rows[row::A1].iter().chain(&rows[row::A2]) {
        alice[v.index()] = true;
    }
    for &(t_a, f_a, u_a, _tb, _fb, _ub) in bits1.iter().chain(&bits2) {
        for v in [t_a, f_a, u_a] {
            alice[v.index()] = true;
        }
    }

    Bcd19Graph {
        partitioned: PartitionedGraph { graph, alice },
        k,
        rows,
        bits1,
        bits2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::mds::solve_mds_with_budget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn predicate_holds(inst: &DisjInstance) -> bool {
        let g = build(inst);
        solve_mds_with_budget(g.graph(), g.ds_budget()).is_some()
    }

    #[test]
    fn vertex_and_cut_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [2usize, 4, 8] {
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let g = build(&inst);
            let logk = k.ilog2() as usize;
            assert_eq!(g.graph().num_nodes(), 4 * k + 12 * logk);
            // Two crossing edges per 6-cycle.
            assert_eq!(g.partitioned.cut_size(), 4 * logk, "k={k}");
        }
    }

    #[test]
    fn predicate_matches_disjointness_exhaustive_k2() {
        for inst in DisjInstance::enumerate_all(2) {
            assert_eq!(
                predicate_holds(&inst),
                !inst.disjoint(),
                "x={:?} y={:?}",
                inst.x,
                inst.y
            );
        }
    }

    #[test]
    fn predicate_matches_disjointness_random_k4() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4 {
            let yes = DisjInstance::random_intersecting(4, 0.4, &mut rng);
            assert!(predicate_holds(&yes));
            let no = DisjInstance::random_disjoint(4, 0.4, &mut rng);
            assert!(!predicate_holds(&no));
        }
    }

    #[test]
    fn a11_connected_to_all_t() {
        // The paper's example: a₁¹ (index 0) is adjacent to every t_{A1}.
        let mut rng = StdRng::seed_from_u64(3);
        let inst = DisjInstance::random(4, 0.5, &mut rng);
        let g = build(&inst);
        for &(t_a, _f, _u, _tb, _fb, _ub) in &g.bits1 {
            assert!(g.graph().has_edge(g.rows[row::A1][0], t_a));
        }
    }

    #[test]
    fn u_vertices_have_no_row_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = DisjInstance::random(4, 0.5, &mut rng);
        let g = build(&inst);
        for &(_t, _f, u_a, _tb, _fb, u_b) in g.bits1.iter().chain(&g.bits2) {
            assert_eq!(g.graph().degree(u_a), 2, "u vertices are cycle-only");
            assert_eq!(g.graph().degree(u_b), 2);
        }
    }

    #[test]
    fn input_locality() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = DisjInstance::random(4, 0.5, &mut rng);
        let mut x2 = base.clone();
        x2.x = DisjInstance::random(4, 0.5, &mut rng).x;
        assert!(build(&base)
            .partitioned
            .input_locality_ok(&build(&x2).partitioned, true));
    }
}
