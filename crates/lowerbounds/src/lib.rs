//! Lower-bound graph families from *Distributed Approximation on Power
//! Graphs* (Sections 5, 7, 8).
//!
//! The paper's `Ω̃(n²)` CONGEST lower bounds all follow the Alice–Bob
//! framework (Theorem 19): exhibit a family `G_{x,y}` whose structure
//! depends on two set-disjointness inputs only inside Alice's and Bob's
//! halves, such that a graph predicate (e.g. "has a `G²`-vertex cover of
//! size `W`") holds iff `DISJ(x, y) = false`, with a cut of `O(log k)`
//! edges between the halves. The information-theoretic part (communication
//! complexity of DISJ) cannot be "run"; what *can* be verified
//! mechanically — and is, in this crate's tests and the E7–E9 experiment
//! harness — is everything else:
//!
//! * the constructions themselves ([`ckp17`] for Figure 1, [`mwvc`] for
//!   Figure 2, [`mvc`] for Figure 3, [`bcd19`] for Figure 4, [`mds_exact`]
//!   for Figure 5, [`set_gadget`] for Figure 6, [`mds_approx`] for
//!   Figure 7),
//! * the predicate ⇔ DISJ equivalences, via exact solvers,
//! * the gadget-replacement lemmas (21, 24, 34, 40, 43) relating optima of
//!   `G_{x,y}` and `H²_{x,y}`,
//! * the `O(k log k)` vertex counts and `O(log k)` cut sizes that make the
//!   bounds near-quadratic,
//! * the Section 8 centralized reductions ([`centralized`], Theorems 44
//!   and 45).
//!
//! Where the paper leaves wiring details to the cited constructions
//! (\[CKP17\], \[BCD+19\]), this crate reconstructs them from the paper's
//! descriptions and *proves the reconstruction right by exhaustive /
//! randomized verification* at small `k` — see the module docs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bcd19;
pub mod centralized;
pub mod ckp17;
pub mod disjointness;
pub mod gadgets;
pub mod limitations;
pub mod mds_approx;
pub mod mds_exact;
pub mod mvc;
pub mod mwvc;
pub mod set_gadget;
