//! Section 8 and Theorem 26: centralized hardness reductions.
//!
//! * **Theorem 44**: replacing every edge of `G` with a 3-vertex dangling
//!   path gives `H` with `MVC(H²) = MVC(G) + 2|E(G)|` — so `G²`-MVC is
//!   NP-complete, and a sufficiently fine FPTAS on `H²` would recover the
//!   exact MVC of `G` (the `ε = 1/(3|E|)` argument).
//! * **Theorem 45**: doing the same with *merged* dangling gadgets gives
//!   `MDS(H²) = MDS(G) + 1` — transferring Feige's `(1−ε)·ln n`
//!   inapproximability to `G²`-MDS.
//! * **Theorem 26** uses the Theorem-44 reduction quantitatively:
//!   `OPT(H²) = OPT(G) + 2m` makes a distributed `(1+ε)`-approximation on
//!   squares simulate a constant-factor approximation on `G` itself.
//!
//! Both equalities are verified on random graphs in the tests and in
//! experiment E11.

use crate::gadgets::attach_dangling_path;
use pga_graph::{Graph, GraphBuilder, NodeId};

/// The Theorem 44 reduction: every edge `{u, v}` of `g` is replaced by a
/// dangling path `p¹ — p² — p³` with `p¹` adjacent to `u` and `v`.
///
/// Returns the gadget graph `H`; `H` has `n + 3m` vertices and satisfies
/// `MVC(H²) = MVC(G) + 2m` (and `OPT(H²) = OPT(G) + 2m` for Theorem 26).
pub fn dangling_path_reduction(g: &Graph) -> Graph {
    let mut b = GraphBuilder::new(g.num_nodes());
    for (u, v) in g.edges() {
        attach_dangling_path(&mut b, u, v);
    }
    b.build()
}

/// The Theorem 45 reduction: one *merged* gadget for all edges — each
/// edge contributes a 2-vertex stub `p¹ — p²` (with `p¹` adjacent to both
/// endpoints) and all stubs share a common 3-vertex tail.
///
/// Returns `(H, tail_third_vertex)`; `H` satisfies `MDS(H²) = MDS(G) + 1`
/// (the single extra vertex being the shared tail's `DP_E[3]`).
pub fn merged_dangling_reduction(g: &Graph) -> (Graph, NodeId) {
    let mut b = GraphBuilder::new(g.num_nodes());
    let tail = crate::gadgets::MergedGadget::new(&mut b);
    for (u, v) in g.edges() {
        // A stub whose head is adjacent to both endpoints.
        let p1 = b.add_node();
        let p2 = b.add_node();
        b.add_edge(p1, u);
        b.add_edge(p1, v);
        b.add_edge(p1, p2);
        b.add_edge(p2, tail.p3);
    }
    (b.build(), tail.p3)
}

/// The FPTAS-refutation arithmetic of Theorem 44: with
/// `ε = 1/(3m)`, a `(1+ε)`-approximation on `H²` returns a cover of size
/// at most `OPT(H²) + α` with `α < 1`, i.e. it *is* optimal. Returns the
/// ε to use for a graph with `m` edges.
pub fn fptas_refutation_eps(m: usize) -> f64 {
    1.0 / (3.0 * m.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::mds::mds_size;
    use pga_exact::vc::mvc_size;
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theorem44_offset_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..8 {
            let g = generators::gnp(9, 0.3, &mut rng);
            let h = dangling_path_reduction(&g);
            assert_eq!(h.num_nodes(), g.num_nodes() + 3 * g.num_edges());
            let h2 = square(&h);
            assert_eq!(mvc_size(&h2), mvc_size(&g) + 2 * g.num_edges(), "G: {g:?}");
        }
    }

    #[test]
    fn theorem44_offset_on_structured_graphs() {
        for g in [
            generators::cycle(7),
            generators::star(6),
            generators::complete(5),
            generators::path(8),
        ] {
            let h = dangling_path_reduction(&g);
            let h2 = square(&h);
            assert_eq!(mvc_size(&h2), mvc_size(&g) + 2 * g.num_edges());
        }
    }

    #[test]
    fn theorem45_offset_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..6 {
            let g = generators::connected_gnp(8, 0.25, &mut rng);
            let (h, _tail) = merged_dangling_reduction(&g);
            let h2 = square(&h);
            assert_eq!(mds_size(&h2), mds_size(&g) + 1, "G: {g:?}");
        }
    }

    #[test]
    fn theorem45_offset_on_structured_graphs() {
        for g in [
            generators::cycle(9),
            generators::star(7),
            generators::grid(2, 4),
        ] {
            let (h, _tail) = merged_dangling_reduction(&g);
            let h2 = square(&h);
            assert_eq!(mds_size(&h2), mds_size(&g) + 1);
        }
    }

    #[test]
    fn fptas_eps_small_enough() {
        // (1 + ε)(OPT + 2m) < OPT + 2m + 1 for ε = 1/(3m) and OPT ≤ n ≤ m+1.
        let m = 20;
        let eps = fptas_refutation_eps(m);
        let opt = 10.0;
        assert!((1.0 + eps) * (opt + 2.0 * m as f64) < opt + 2.0 * m as f64 + 1.0);
    }

    #[test]
    fn empty_graph_reductions() {
        let g = Graph::empty(3);
        assert_eq!(dangling_path_reduction(&g).num_nodes(), 3);
        let (h, _p) = merged_dangling_reduction(&g);
        assert_eq!(h.num_nodes(), 6); // 3 originals + bare tail
    }
}
