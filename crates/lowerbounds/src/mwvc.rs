//! Theorem 20 (Figure 2): the weighted `G²`-MVC lower-bound family
//! `H_{x,y}`.
//!
//! Starting from the \[CKP17\] family (see [`crate::ckp17`]):
//!
//! * every edge incident on a bit-gadget vertex is replaced by a
//!   **weight-0 path-gadget vertex** `p_e` adjacent to both endpoints;
//! * the `Θ(k²)` input edges are replaced by **shared** gadgets: one
//!   weight-0 vertex `pᵢᵃ` hangs off each `a₁ⁱ`, and each input edge
//!   `{a₁ⁱ, a₂ʲ}` becomes `{pᵢᵃ, a₂ʲ}` (same on Bob's side) — keeping the
//!   vertex count at `O(k log k)`;
//! * row-clique edges remain direct; original vertices keep weight 1.
//!
//! **Lemma 21** (verified in the tests): `H²_{x,y}` has a vertex cover of
//! weight `W` iff `G_{x,y}` has one of size `W` — so the minimum weighted
//! cover of the square equals the minimum cover of the base graph, and
//! Figure 1's predicate transfers at the same threshold.

use crate::ckp17::{self, row, Ckp17Graph};
use crate::disjointness::{DisjInstance, PartitionedGraph};
use crate::gadgets::insert_path_vertex;
use pga_graph::{Graph, GraphBuilder, NodeId, VertexWeights};

/// The weighted `H_{x,y}` instance.
#[derive(Clone, Debug)]
pub struct MwvcLowerBound {
    /// The gadget graph with its Alice/Bob partition.
    pub partitioned: PartitionedGraph,
    /// Vertex weights: 1 on original `G_{x,y}` vertices, 0 on gadgets.
    pub weights: VertexWeights,
    /// `k`.
    pub k: usize,
    /// The cover-weight threshold `W = 4(k−1) + 4 log₂ k` of the
    /// predicate.
    pub budget: u64,
}

impl MwvcLowerBound {
    /// The underlying communication graph `H_{x,y}`.
    pub fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }
}

/// Builds `H_{x,y}` from a disjointness instance (via the Figure-1 base).
pub fn build(inst: &DisjInstance) -> MwvcLowerBound {
    let base: Ckp17Graph = ckp17::build(inst);
    let g = base.graph();
    let n0 = g.num_nodes();
    let is_bit = base.bit_vertex_set();

    let mut b = GraphBuilder::new(n0);
    let mut alice = base.partitioned.alice.clone();
    let mut weights = vec![1u64; n0];
    let register_gadget = |alice: &mut Vec<bool>, weights: &mut Vec<u64>, on_alice: bool| {
        alice.push(on_alice);
        weights.push(0);
    };

    // Copy edges, replacing bit-incident ones with path gadgets.
    for (u, v) in g.edges() {
        if is_bit[u.index()] || is_bit[v.index()] {
            let _p = insert_path_vertex(&mut b, u, v);
            // A gadget vertex sits on Alice's side iff both endpoints do;
            // the O(log k) gadgets on cut edges go to Alice.
            let side = alice[u.index()] && alice[v.index()];
            register_gadget(&mut alice, &mut weights, side);
        } else if !is_input_edge(&base, u, v) {
            b.add_edge(u, v);
        }
    }

    // Shared gadgets replacing the input edges.
    for (r1, r2, alice_side) in [(row::A1, row::A2, true), (row::B1, row::B2, false)] {
        for i in 0..base.k {
            let host = base.rows[r1][i];
            let p = b.add_node();
            b.add_edge(p, host);
            register_gadget(&mut alice, &mut weights, alice_side);
            for j in 0..base.k {
                let other = base.rows[r2][j];
                if g.has_edge(host, other) {
                    b.add_edge(p, other);
                }
            }
        }
    }

    let graph = b.build();
    debug_assert_eq!(graph.num_nodes(), alice.len());
    MwvcLowerBound {
        partitioned: PartitionedGraph { graph, alice },
        weights: VertexWeights::from_vec(weights),
        k: base.k,
        budget: base.cover_budget() as u64,
    }
}

fn is_input_edge(base: &Ckp17Graph, u: NodeId, v: NodeId) -> bool {
    let side = |r1: usize, r2: usize| {
        (base.rows[r1].contains(&u) && base.rows[r2].contains(&v))
            || (base.rows[r1].contains(&v) && base.rows[r2].contains(&u))
    };
    side(row::A1, row::A2) || side(row::B1, row::B2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckp17;
    use pga_exact::vc::mvc_size;
    use pga_exact::wvc::{mwvc_weight, solve_mwvc_with_budget};
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vertex_count_near_linear() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [2usize, 4, 8] {
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let h = build(&inst);
            let logk = k.ilog2() as usize;
            // 4k + 8 log k originals, 4k log k + 8 log k edge gadgets,
            // 2k shared gadgets — O(k log k), never Θ(k²).
            let expect = (4 * k + 8 * logk) + (4 * k * logk + 8 * logk) + 2 * k;
            assert_eq!(h.graph().num_nodes(), expect, "k={k}");
        }
    }

    #[test]
    fn cut_stays_logarithmic() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in [2usize, 4, 8] {
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let h = build(&inst);
            let logk = k.ilog2() as usize;
            assert!(
                h.partitioned.cut_size() <= 8 * logk,
                "k={k}: cut {}",
                h.partitioned.cut_size()
            );
        }
    }

    #[test]
    fn lemma21_weight_equality_k2() {
        // min-weight VC of H² == min VC of G, across several instances.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..6 {
            let inst = DisjInstance::random(2, 0.5, &mut rng);
            let g = ckp17::build(&inst);
            let h = build(&inst);
            let h2 = square(h.graph());
            assert_eq!(
                mwvc_weight(&h2, &h.weights),
                mvc_size(g.graph()) as u64,
                "x={:?} y={:?}",
                inst.x,
                inst.y
            );
        }
    }

    #[test]
    fn predicate_transfers_to_square_k2() {
        for inst in [
            DisjInstance::new(2, vec![true; 4], vec![true; 4]), // intersecting
            DisjInstance::new(
                2,
                vec![true, false, false, false],
                vec![false, true, true, true],
            ), // disjoint
        ] {
            let h = build(&inst);
            let h2 = square(h.graph());
            let fits = solve_mwvc_with_budget(&h2, &h.weights, h.budget).is_some();
            assert_eq!(fits, !inst.disjoint());
        }
    }

    #[test]
    fn predicate_transfers_random_k4() {
        let mut rng = StdRng::seed_from_u64(5);
        let yes = DisjInstance::random_intersecting(4, 0.4, &mut rng);
        let h = build(&yes);
        let h2 = square(h.graph());
        assert!(solve_mwvc_with_budget(&h2, &h.weights, h.budget).is_some());

        let no = DisjInstance::random_disjoint(4, 0.4, &mut rng);
        let h = build(&no);
        let h2 = square(h.graph());
        assert!(solve_mwvc_with_budget(&h2, &h.weights, h.budget).is_none());
    }

    #[test]
    fn zero_weight_vertices_are_exactly_gadgets() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = DisjInstance::random(4, 0.5, &mut rng);
        let h = build(&inst);
        let zeros = h.weights.as_slice().iter().filter(|&&w| w == 0).count();
        let logk = 2;
        assert_eq!(zeros, 4 * 4 * logk + 8 * logk + 2 * 4);
    }
}
