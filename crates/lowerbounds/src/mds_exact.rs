//! Theorem 31 (Figure 5): the exact `G²`-MDS lower-bound family
//! `H_{x,y}`.
//!
//! Built from the \[BCD+19\] base (see [`crate::bcd19`]) by
//!
//! * replacing every edge incident on a bit-gadget vertex with a
//!   **5-vertex dangling path** `DP_e[1..5]` (`DP_e[1]` adjacent to both
//!   endpoints),
//! * attaching a **shared 5-vertex path gadget** to every row vertex in
//!   all four row sets, and
//! * rewiring each input edge `{a₁ⁱ, a₂ʲ}` as `{A₁ⁱ[1], A₂ʲ[1]}` between
//!   gadget heads, so `a₁ⁱ` and `a₂ʲ` end up at distance ≤ 2 exactly as
//!   before.
//!
//! The 5-vertex tail forces structure in the square: `DP[5]` is only
//! reachable from `{DP[3], DP[4], DP[5]}`, so (Lemma 32) every optimum
//! can be normalized to contain `DP[3]` — one fixed vertex per gadget —
//! and nothing else from the gadget (Lemma 33). **Lemma 34** (verified in
//! the tests at `k = 2`): `MDS(H²_{x,y}) = MDS(G_{x,y}) + #gadgets`.
//!
//! On gadget counting: the paper's Lemma 34 states the offset
//! `2k + 4k log₂ k + 12 log₂ k`, while its construction text attaches
//! shared gadgets to *all four* row sets (as does Figure 5), which gives
//! `4k + 4k log₂ k + 12 log₂ k` gadgets. We follow the construction text
//! (4k shared gadgets) and verify the offset with the count actually
//! built — see `DESIGN.md` for the discrepancy note.

use crate::bcd19::{self, row, Bcd19Graph};
use crate::disjointness::{DisjInstance, PartitionedGraph};
use crate::gadgets::{attach_dangling_path5, attach_shared_path5};
use pga_graph::{Graph, GraphBuilder, NodeId};

/// The Figure-5 instance.
#[derive(Clone, Debug)]
pub struct MdsExactLowerBound {
    /// The gadget graph with its Alice/Bob partition.
    pub partitioned: PartitionedGraph,
    /// `k`.
    pub k: usize,
    /// Number of 5-vertex gadgets (dangling + shared).
    pub num_gadgets: usize,
    /// Predicate threshold on `H²`: `(4 log₂ k + 2) + #gadgets`.
    pub budget: usize,
}

impl MdsExactLowerBound {
    /// The underlying communication graph.
    pub fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }
}

/// Builds the Figure-5 family from a disjointness instance.
pub fn build(inst: &DisjInstance) -> MdsExactLowerBound {
    let base: Bcd19Graph = bcd19::build(inst);
    let g = base.graph();
    let is_bit = base.bit_vertex_set();

    let mut b = GraphBuilder::new(g.num_nodes());
    let mut alice = base.partitioned.alice.clone();
    let mut num_gadgets = 0;
    let register5 = |alice: &mut Vec<bool>, on_alice: bool| {
        for _ in 0..5 {
            alice.push(on_alice);
        }
    };

    // Bit-incident edges → dangling 5-paths; row/input edges handled below.
    for (u, v) in g.edges() {
        if is_bit[u.index()] || is_bit[v.index()] {
            attach_dangling_path5(&mut b, u, v);
            let side = alice[u.index()] && alice[v.index()];
            register5(&mut alice, side);
            num_gadgets += 1;
        } else if !base.is_input_edge(u, v) {
            b.add_edge(u, v);
        }
    }

    // Shared 5-path gadgets on every row vertex; heads carry input edges.
    let mut heads: [Vec<NodeId>; 4] = Default::default();
    for (r, on_alice) in [
        (row::A1, true),
        (row::A2, true),
        (row::B1, false),
        (row::B2, false),
    ] {
        for i in 0..base.k {
            let host = base.rows[r][i];
            let p = attach_shared_path5(&mut b, host);
            register5(&mut alice, on_alice);
            num_gadgets += 1;
            heads[r].push(p[0]);
        }
    }
    for i in 0..base.k {
        for j in 0..base.k {
            if inst.x_bit(i, j) {
                b.add_edge(heads[row::A1][i], heads[row::A2][j]);
            }
            if inst.y_bit(i, j) {
                b.add_edge(heads[row::B1][i], heads[row::B2][j]);
            }
        }
    }

    let graph = b.build();
    debug_assert_eq!(graph.num_nodes(), alice.len());
    let base_budget = base.ds_budget();
    MdsExactLowerBound {
        partitioned: PartitionedGraph { graph, alice },
        k: base.k,
        num_gadgets,
        budget: base_budget + num_gadgets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcd19;
    use pga_exact::mds::{mds_size, solve_mds_with_budget};
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gadget_count_and_size() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [2usize, 4, 8] {
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let h = build(&inst);
            let logk = k.ilog2() as usize;
            // 4k·log k row-to-bit + 12·log k cycle edges + 4k shared.
            assert_eq!(h.num_gadgets, 4 * k * logk + 12 * logk + 4 * k);
            assert_eq!(h.graph().num_nodes(), 4 * k + 12 * logk + 5 * h.num_gadgets);
        }
    }

    #[test]
    fn cut_stays_logarithmic() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in [2usize, 4, 8] {
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let h = build(&inst);
            assert!(
                h.partitioned.cut_size() <= 8 * k.ilog2() as usize,
                "k={k}: {}",
                h.partitioned.cut_size()
            );
        }
    }

    #[test]
    fn lemma34_offset_equality_k2() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2 {
            let inst = DisjInstance::random(2, 0.5, &mut rng);
            let g = bcd19::build(&inst);
            let h = build(&inst);
            let h2 = square(h.graph());
            assert_eq!(
                mds_size(&h2),
                mds_size(g.graph()) + h.num_gadgets,
                "x={:?} y={:?}",
                inst.x,
                inst.y
            );
        }
    }

    #[test]
    fn predicate_transfers_to_square_k2() {
        let yes = DisjInstance::new(2, vec![true; 4], vec![true; 4]);
        let h = build(&yes);
        assert!(solve_mds_with_budget(&square(h.graph()), h.budget).is_some());

        let no = DisjInstance::new(
            2,
            vec![true, false, false, false],
            vec![false, true, true, true],
        );
        let h = build(&no);
        assert!(solve_mds_with_budget(&square(h.graph()), h.budget).is_none());
    }

    #[test]
    fn dangling_leaf_isolated_in_square() {
        // Lemma 32's structural hook: DP[5] sees only DP[3], DP[4].
        let inst = DisjInstance::new(2, vec![false; 4], vec![false; 4]);
        let h = build(&inst);
        let h2 = square(h.graph());
        let n0 = 4 * 2 + 12;
        // First gadget occupies ids n0..n0+5.
        let p5 = NodeId(n0 as u32 + 4);
        assert_eq!(h2.degree(p5), 2);
    }

    #[test]
    fn input_edges_between_heads_give_distance_two() {
        // x₀₀ = 1 must put a₁⁰ and a₂⁰ at distance ≤ 2 via the heads...
        // distance exactly: a₁⁰ — A₁⁰[1] — A₂⁰[1] — a₂⁰ is 3 hops; the
        // SQUARE brings head-to-row pairs to distance 1 and the two rows
        // to distance... the paper's Fig. 5 text: "if xij = 1 then the
        // vertices Aa′j[1], Aai[1] have edges to ai and a′j in H²".
        let inst = DisjInstance::new(
            2,
            vec![true, false, false, false],
            vec![false, false, false, false],
        );
        let h = build(&inst);
        let hb = bcd19::build(&inst);
        let h2 = square(h.graph());
        // Find the heads: shared gadgets are appended after dangling ones.
        // Instead of index math, verify via the bcd19 row ids and graph
        // adjacency: the head adjacent to a row vertex with an edge to
        // another head.
        let a10 = hb.rows[row::A1][0];
        let a20 = hb.rows[row::A2][0];
        let head_a10 = h
            .graph()
            .neighbors(a10)
            .iter()
            .copied()
            .max()
            .expect("a₁⁰ has its gadget head (the last-attached neighbor)");
        assert!(h2.has_edge(head_a10, a20), "head covers a₂⁰ in the square");
    }
}
