//! Two-party set disjointness instances and Alice/Bob cut accounting
//! (Section 5.1, Definition 18, Theorem 19).

use pga_graph::{Graph, NodeId};
use rand::{Rng, RngExt};

/// A two-party set-disjointness instance over `k × k` index pairs
/// (`K = k²` bits per player, indexed as `x[i][j]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisjInstance {
    /// Side length `k` (so each input has `k²` bits).
    pub k: usize,
    /// Alice's bits.
    pub x: Vec<bool>,
    /// Bob's bits.
    pub y: Vec<bool>,
}

impl DisjInstance {
    /// Builds an instance from bit matrices.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are not `k²` long.
    pub fn new(k: usize, x: Vec<bool>, y: Vec<bool>) -> Self {
        assert_eq!(x.len(), k * k);
        assert_eq!(y.len(), k * k);
        DisjInstance { k, x, y }
    }

    /// Alice's bit at `(i, j)` (0-based).
    pub fn x_bit(&self, i: usize, j: usize) -> bool {
        self.x[i * self.k + j]
    }

    /// Bob's bit at `(i, j)` (0-based).
    pub fn y_bit(&self, i: usize, j: usize) -> bool {
        self.y[i * self.k + j]
    }

    /// `DISJ(x, y)`: `true` iff no index holds a 1 in both inputs.
    pub fn disjoint(&self) -> bool {
        self.x.iter().zip(&self.y).all(|(&a, &b)| !(a && b))
    }

    /// A witness `(i, j)` with `x[i][j] = y[i][j] = 1`, if any.
    pub fn witness(&self) -> Option<(usize, usize)> {
        for i in 0..self.k {
            for j in 0..self.k {
                if self.x_bit(i, j) && self.y_bit(i, j) {
                    return Some((i, j));
                }
            }
        }
        None
    }

    /// A uniformly random instance (each bit independent with probability
    /// `p`); may or may not be disjoint.
    pub fn random(k: usize, p: f64, rng: &mut impl Rng) -> Self {
        let bits = |rng: &mut dyn FnMut() -> bool| (0..k * k).map(|_| rng()).collect();
        let x = bits(&mut || rng.random::<f64>() < p);
        let y = bits(&mut || rng.random::<f64>() < p);
        DisjInstance { k, x, y }
    }

    /// A random *intersecting* instance: plants a common 1 at a random
    /// index, so `DISJ = false`.
    pub fn random_intersecting(k: usize, p: f64, rng: &mut impl Rng) -> Self {
        let mut inst = Self::random(k, p, rng);
        let (i, j) = (rng.random_range(0..k), rng.random_range(0..k));
        inst.x[i * k + j] = true;
        inst.y[i * k + j] = true;
        inst
    }

    /// A random *disjoint* instance: clears Bob's bit wherever Alice holds
    /// a 1, so `DISJ = true`.
    pub fn random_disjoint(k: usize, p: f64, rng: &mut impl Rng) -> Self {
        let mut inst = Self::random(k, p, rng);
        for idx in 0..k * k {
            if inst.x[idx] {
                inst.y[idx] = false;
            }
        }
        inst
    }

    /// Enumerates all `2^(2k²)` instances — only sensible for `k ≤ 2`.
    pub fn enumerate_all(k: usize) -> impl Iterator<Item = DisjInstance> {
        let bits = k * k;
        assert!(bits <= 8, "enumeration limited to k² ≤ 8 bits per player");
        (0..(1u32 << bits)).flat_map(move |xm| {
            (0..(1u32 << bits)).map(move |ym| DisjInstance {
                k,
                x: (0..bits).map(|b| xm >> b & 1 == 1).collect(),
                y: (0..bits).map(|b| ym >> b & 1 == 1).collect(),
            })
        })
    }
}

/// A lower-bound graph instance together with its Alice/Bob vertex
/// partition (Definition 18).
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    /// The constructed graph.
    pub graph: Graph,
    /// `true` = the vertex belongs to Alice's side `V_A`.
    pub alice: Vec<bool>,
}

impl PartitionedGraph {
    /// The cut `E(V_A, V_B)` — Theorem 19 divides the DISJ communication
    /// bound by this quantity, so the families keep it at `O(log k)`.
    pub fn cut_size(&self) -> usize {
        self.graph
            .edges()
            .filter(|&(u, v)| self.alice[u.index()] != self.alice[v.index()])
            .count()
    }

    /// The cut edges themselves.
    pub fn cut_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.graph
            .edges()
            .filter(|&(u, v)| self.alice[u.index()] != self.alice[v.index()])
            .collect()
    }

    /// Checks Definition 18's locality conditions against a reference
    /// graph built from a *different* input for the same player: edges
    /// that differ must lie strictly inside that player's side.
    pub fn input_locality_ok(&self, other: &PartitionedGraph, alice_changed: bool) -> bool {
        if self.graph.num_nodes() != other.graph.num_nodes() {
            return false;
        }
        let mine: std::collections::HashSet<(NodeId, NodeId)> = self.graph.edges().collect();
        let theirs: std::collections::HashSet<(NodeId, NodeId)> = other.graph.edges().collect();
        mine.symmetric_difference(&theirs).all(|&(u, v)| {
            let side = self.alice[u.index()] && self.alice[v.index()];
            let other_side = !self.alice[u.index()] && !self.alice[v.index()];
            if alice_changed {
                side
            } else {
                other_side
            }
        })
    }

    /// The round lower bound implied by Theorem 19 (up to constants),
    /// `CC(DISJ_{k²}) / (|C| log n) = Ω(k² / (|C| log n))`.
    pub fn theorem19_round_bound(&self, k: usize) -> f64 {
        let n = self.graph.num_nodes() as f64;
        let cut = self.cut_size().max(1) as f64;
        (k * k) as f64 / (cut * n.log2().max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disjointness_evaluation() {
        let inst = DisjInstance::new(
            2,
            vec![true, false, false, true],
            vec![false, true, false, true],
        );
        assert!(!inst.disjoint());
        assert_eq!(inst.witness(), Some((1, 1)));

        let disj = DisjInstance::new(
            2,
            vec![true, false, false, false],
            vec![false, true, true, true],
        );
        assert!(disj.disjoint());
        assert_eq!(disj.witness(), None);
    }

    #[test]
    fn random_generators_respect_promise() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(!DisjInstance::random_intersecting(4, 0.3, &mut rng).disjoint());
            assert!(DisjInstance::random_disjoint(4, 0.3, &mut rng).disjoint());
        }
    }

    #[test]
    fn enumeration_count() {
        assert_eq!(DisjInstance::enumerate_all(1).count(), 4);
        assert_eq!(DisjInstance::enumerate_all(2).count(), 256);
    }

    #[test]
    fn bit_indexing() {
        let inst = DisjInstance::new(
            2,
            vec![true, false, false, false],
            vec![false, false, true, false],
        );
        assert!(inst.x_bit(0, 0));
        assert!(!inst.x_bit(0, 1));
        assert!(inst.y_bit(1, 0));
    }

    #[test]
    fn cut_size_of_partitioned_graph() {
        let g = pga_graph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pg = PartitionedGraph {
            graph: g,
            alice: vec![true, true, false, false],
        };
        assert_eq!(pg.cut_size(), 2);
        assert_eq!(pg.cut_edges().len(), 2);
    }
}
