//! Theorems 35 and 41 (Figure 7): the constant-factor-approximation
//! lower-bound families for `G²`-MDS.
//!
//! These are the paper's technically heaviest constructions. The exact
//! lower bound of Theorem 31 cannot give an approximation gap: its optimum
//! is `Θ(k log k)` because every gadget must contribute a vertex. The
//! fix (Challenges 2–3) is twofold: *merge* all shared path gadgets of a
//! side into one tail (Lemma 36), and replace the bit gadgets by the
//! **set gadget** of Figure 6, whose `r`-covering property makes cheap
//! domination possible *only* through complementary set pairs. The result
//! is a family whose square has minimum dominating weight **6 when the
//! inputs intersect and ≥ 7 when they are disjoint** (weighted, Thm 35),
//! or size **8 versus ≥ 9** (unweighted, Thm 41) — a constant gap over a
//! constant optimum, which Theorem 19 turns into `Ω̃(n²)` rounds for any
//! better-than-`7/6` (resp. `9/8`) approximation.
//!
//! Both gaps are verified by exact search in the tests, over certified
//! `r`-covering systems.

use crate::disjointness::{DisjInstance, PartitionedGraph};
use crate::gadgets::MergedGadget;
use crate::set_gadget::SetSystem;
use pga_graph::{Graph, GraphBuilder, NodeId, VertexWeights};

/// One side's worth of Figure-7 set-gadget vertices.
#[derive(Clone, Debug)]
struct GadgetCopy {
    sets: Vec<NodeId>,
    complements: Vec<NodeId>,
}

/// The Figure-7 instance (weighted or unweighted).
#[derive(Clone, Debug)]
pub struct MdsApproxLowerBound {
    /// The graph with its Alice/Bob partition.
    pub partitioned: PartitionedGraph,
    /// Vertex weights (all 1 in the unweighted variant).
    pub weights: VertexWeights,
    /// Number of row vertices per row set (`T`).
    pub t: usize,
    /// The low threshold: a dominating set of this weight exists iff
    /// `DISJ = false` (6 weighted — on top of the free `A*[3]/B*[3]` —
    /// and 8 unweighted, which includes those two).
    pub low: u64,
    /// The high threshold: any dominating set has at least this weight
    /// when `DISJ = true` (`low + 1`).
    pub high: u64,
}

impl MdsApproxLowerBound {
    /// The underlying communication graph.
    pub fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }

    /// The approximation factor the gap rules out: `high/low` (`7/6`
    /// weighted, `9/8` unweighted).
    pub fn gap_ratio(&self) -> f64 {
        self.high as f64 / self.low as f64
    }
}

/// Configuration for the Figure-7 builders.
#[derive(Clone, Debug)]
pub struct ApproxConfig {
    /// The certified `r`-covering set system (with `T` sets).
    pub system: SetSystem,
    /// Weight of the heavy vertices (`α`, `β`, hubs, elements) in the
    /// weighted variant. The paper takes this to be "an arbitrarily large
    /// constant"; the verification instances use a value large enough
    /// that no heavy vertex fits under the thresholds.
    pub heavy: u64,
}

/// Builds the **weighted** Theorem 35 family.
pub fn build_weighted(inst: &DisjInstance, cfg: &ApproxConfig) -> MdsApproxLowerBound {
    build_inner(inst, cfg, true)
}

/// Builds the **unweighted** Theorem 41 family.
pub fn build_unweighted(inst: &DisjInstance, cfg: &ApproxConfig) -> MdsApproxLowerBound {
    build_inner(inst, cfg, false)
}

fn build_inner(inst: &DisjInstance, cfg: &ApproxConfig, weighted: bool) -> MdsApproxLowerBound {
    let t = inst.k;
    let sys = &cfg.system;
    assert_eq!(sys.len(), t, "the set system must have T = k sets");
    let ell = sys.universe;

    let mut b = GraphBuilder::new(0);
    let mut weights: Vec<u64> = Vec::new();
    let mut alice: Vec<bool> = Vec::new();
    let add = |b: &mut GraphBuilder,
               weights: &mut Vec<u64>,
               alice: &mut Vec<bool>,
               w: u64,
               on_alice: bool| {
        weights.push(w);
        alice.push(on_alice);
        b.add_node()
    };

    // Row sets A, A' (Alice), B, B' (Bob).
    let rows_a: Vec<NodeId> = (0..t)
        .map(|_| add(&mut b, &mut weights, &mut alice, 1, true))
        .collect();
    let rows_ap: Vec<NodeId> = (0..t)
        .map(|_| add(&mut b, &mut weights, &mut alice, 1, true))
        .collect();
    let rows_b: Vec<NodeId> = (0..t)
        .map(|_| add(&mut b, &mut weights, &mut alice, 1, false))
        .collect();
    let rows_bp: Vec<NodeId> = (0..t)
        .map(|_| add(&mut b, &mut weights, &mut alice, 1, false))
        .collect();

    // Two set-gadget copies. Alice hosts the S sides and the αs; Bob the
    // complements and βs.
    let make_copy =
        |b: &mut GraphBuilder, weights: &mut Vec<u64>, alice: &mut Vec<bool>| -> GadgetCopy {
            let sets: Vec<NodeId> = (0..t).map(|_| add(b, weights, alice, 1, true)).collect();
            let complements: Vec<NodeId> =
                (0..t).map(|_| add(b, weights, alice, 1, false)).collect();
            let alphas: Vec<NodeId> = (0..ell)
                .map(|_| add(b, weights, alice, cfg.heavy, true))
                .collect();
            let betas: Vec<NodeId> = (0..ell)
                .map(|_| add(b, weights, alice, cfg.heavy, false))
                .collect();
            for i in 0..ell {
                b.add_edge(alphas[i], betas[i]);
            }
            for j in 0..t {
                for i in 0..ell {
                    if sys.sets[j][i] {
                        b.add_edge(sets[j], alphas[i]);
                    } else {
                        b.add_edge(complements[j], betas[i]);
                    }
                }
            }
            if weighted {
                // Hubs α and β (weighted variant only).
                let ah = add(b, weights, alice, cfg.heavy, true);
                let bh = add(b, weights, alice, cfg.heavy, false);
                for j in 0..t {
                    b.add_edge(ah, sets[j]);
                    b.add_edge(bh, complements[j]);
                }
            }
            GadgetCopy { sets, complements }
        };
    let g1 = make_copy(&mut b, &mut weights, &mut alice);
    let g2 = make_copy(&mut b, &mut weights, &mut alice);

    // Merged gadgets: A* on Alice's side, B* on Bob's. In the weighted
    // variant only the shared [3] vertex is free.
    let make_star =
        |b: &mut GraphBuilder, weights: &mut Vec<u64>, alice: &mut Vec<bool>, on_alice: bool| {
            let star = MergedGadget::new(b);
            weights.push(if weighted { 0 } else { 1 }); // [3]
            weights.push(1); // [4]
            weights.push(1); // [5]
            for _ in 0..3 {
                alice.push(on_alice);
            }
            star
        };
    let a_star = make_star(&mut b, &mut weights, &mut alice, true);
    let b_star = make_star(&mut b, &mut weights, &mut alice, false);

    // Stubs: every row vertex gets an input-stub and a set-stub on its
    // side's merged gadget.
    let stub = |b: &mut GraphBuilder,
                weights: &mut Vec<u64>,
                alice: &mut Vec<bool>,
                merged: &MergedGadget,
                host: NodeId,
                on_alice: bool|
     -> NodeId {
        let [p1, _p2] = merged.attach(b, host);
        for _ in 0..2 {
            weights.push(1);
            alice.push(on_alice);
        }
        p1
    };

    let head_a: Vec<NodeId> = rows_a
        .iter()
        .map(|&h| stub(&mut b, &mut weights, &mut alice, &a_star, h, true))
        .collect();
    let head_ap: Vec<NodeId> = rows_ap
        .iter()
        .map(|&h| stub(&mut b, &mut weights, &mut alice, &a_star, h, true))
        .collect();
    let head_b: Vec<NodeId> = rows_b
        .iter()
        .map(|&h| stub(&mut b, &mut weights, &mut alice, &b_star, h, false))
        .collect();
    let head_bp: Vec<NodeId> = rows_bp
        .iter()
        .map(|&h| stub(&mut b, &mut weights, &mut alice, &b_star, h, false))
        .collect();

    // Set-stubs: the head of a^S_i is adjacent to all S_j with j ≠ i.
    for i in 0..t {
        for (host, star, targets, on_alice) in [
            (rows_a[i], &a_star, &g1.sets, true),
            (rows_b[i], &b_star, &g1.complements, false),
            (rows_ap[i], &a_star, &g2.sets, true),
            (rows_bp[i], &b_star, &g2.complements, false),
        ] {
            let head = stub(&mut b, &mut weights, &mut alice, star, host, on_alice);
            for (j, &s) in targets.iter().enumerate() {
                if j != i {
                    b.add_edge(head, s);
                }
            }
        }
    }

    // Unweighted variant: q vertices re-anchor the set vertices to the
    // merged tails, replacing the hubs (Section 7.3).
    if !weighted {
        for j in 0..t {
            for (s, star, on_alice) in [
                (g1.sets[j], &a_star, true),
                (g2.sets[j], &a_star, true),
                (g1.complements[j], &b_star, false),
                (g2.complements[j], &b_star, false),
            ] {
                let q = add(&mut b, &mut weights, &mut alice, 1, on_alice);
                b.add_edge(q, s);
                b.add_edge(q, star.p3);
            }
        }
    }

    // Input edges between stub heads.
    for i in 0..t {
        for j in 0..t {
            if inst.x_bit(i, j) {
                b.add_edge(head_a[i], head_ap[j]);
            }
            if inst.y_bit(i, j) {
                b.add_edge(head_b[i], head_bp[j]);
            }
        }
    }

    let graph = b.build();
    debug_assert_eq!(graph.num_nodes(), weights.len());
    let (low, high) = if weighted { (6, 7) } else { (8, 9) };
    MdsApproxLowerBound {
        partitioned: PartitionedGraph { graph, alice },
        weights: VertexWeights::from_vec(weights),
        t,
        low,
        high,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::mds::solve_mwds_with_budget;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(t: usize) -> ApproxConfig {
        let mut rng = StdRng::seed_from_u64(777);
        let system =
            SetSystem::search(24, t, 3, 500, &mut rng).expect("3-covering system with T sets");
        ApproxConfig { system, heavy: 8 }
    }

    fn gap_holds(lb: &MdsApproxLowerBound, expect_cheap: bool) {
        let sq = square(lb.graph());
        let cheap = solve_mwds_with_budget(&sq, &lb.weights, lb.low).is_some();
        assert_eq!(
            cheap, expect_cheap,
            "low-threshold solvability mismatch (low={})",
            lb.low
        );
    }

    #[test]
    fn weighted_gap_intersecting() {
        let cfg = config(3);
        let mut rng = StdRng::seed_from_u64(1);
        let inst = DisjInstance::random_intersecting(3, 0.4, &mut rng);
        gap_holds(&build_weighted(&inst, &cfg), true);
    }

    #[test]
    fn weighted_gap_disjoint() {
        let cfg = config(3);
        let mut rng = StdRng::seed_from_u64(2);
        let inst = DisjInstance::random_disjoint(3, 0.4, &mut rng);
        gap_holds(&build_weighted(&inst, &cfg), false);
    }

    #[test]
    fn unweighted_gap_intersecting() {
        let cfg = config(3);
        let mut rng = StdRng::seed_from_u64(3);
        let inst = DisjInstance::random_intersecting(3, 0.4, &mut rng);
        gap_holds(&build_unweighted(&inst, &cfg), true);
    }

    #[test]
    fn unweighted_gap_disjoint() {
        let cfg = config(3);
        let mut rng = StdRng::seed_from_u64(4);
        let inst = DisjInstance::random_disjoint(3, 0.4, &mut rng);
        gap_holds(&build_unweighted(&inst, &cfg), false);
    }

    #[test]
    fn gap_ratios() {
        let cfg = config(3);
        let mut rng = StdRng::seed_from_u64(5);
        let inst = DisjInstance::random(3, 0.4, &mut rng);
        assert!((build_weighted(&inst, &cfg).gap_ratio() - 7.0 / 6.0).abs() < 1e-12);
        assert!((build_unweighted(&inst, &cfg).gap_ratio() - 9.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn cut_is_small() {
        // The cut is O(ℓ) = O(log T) in the asymptotic family; here just
        // check it is far below the Θ(T²)-edge regime.
        let cfg = config(3);
        let mut rng = StdRng::seed_from_u64(6);
        let inst = DisjInstance::random(3, 0.4, &mut rng);
        let lb = build_weighted(&inst, &cfg);
        let n = lb.graph().num_nodes();
        assert!(
            lb.partitioned.cut_size() < n / 2,
            "cut {} vs n {}",
            lb.partitioned.cut_size(),
            n
        );
    }
}
