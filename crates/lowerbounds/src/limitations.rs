//! Lemma 25 (Section 5.4): why the Alice–Bob framework *cannot* give
//! super-constant lower bounds for `(1+ε)`-approximate `G²`-MVC.
//!
//! The paper's quadratic lower bounds all use families with `O(log n)`
//! cuts. Lemma 25 shows this is no accident of MVC approximation: for
//! *any* family with a cut of `o(n)` vertices, Alice and Bob can compute a
//! `(1 + o(1))`-approximate `G²`-vertex cover with only `O(log n)` bits of
//! communication — take every cut vertex, then solve each side optimally
//! in isolation; by Lemma 6 the optimum is at least `n/2`, so the `o(n)`
//! cut vertices vanish into the approximation factor.
//!
//! This module *runs* that two-party protocol on concrete partitioned
//! graphs, reporting the bits exchanged and the realized approximation
//! ratio — the experiment that explains why Theorem 26's conditional
//! hardness (not Theorem 19) is the right tool for `(1+ε)` MVC.

use crate::disjointness::PartitionedGraph;
use pga_exact::vc::solve_mvc;
use pga_graph::cover::{is_vertex_cover, set_size};
use pga_graph::power::square;
use pga_graph::subgraph::induced_subgraph;

/// Outcome of the Lemma 25 two-party protocol.
#[derive(Clone, Debug)]
pub struct Lemma25Outcome {
    /// The computed vertex cover of `G²` (valid by construction).
    pub cover: Vec<bool>,
    /// Vertices incident to cut edges (taken wholesale).
    pub cut_vertices: usize,
    /// Bits Alice and Bob exchange: each sends the size of its side's
    /// local optimum — `O(log n)`.
    pub bits_exchanged: usize,
}

impl Lemma25Outcome {
    /// Size of the produced cover.
    pub fn size(&self) -> usize {
        set_size(&self.cover)
    }
}

/// Runs the Lemma 25 protocol: both players take their cut vertices, then
/// cover their interior `G²`-edges optimally; the union is a valid
/// `G²`-vertex cover, and each player learns the total size from a single
/// `O(log n)`-bit exchange.
pub fn two_party_protocol(pg: &PartitionedGraph) -> Lemma25Outcome {
    let g = &pg.graph;
    let n = g.num_nodes();
    let mut cover = vec![false; n];

    // Take both endpoints of every cut edge. Any G²-edge {u, v} whose
    // underlying 1- or 2-path crosses the partition has a crossing G-edge
    // on it, and every vertex of that path is within the pair {u, v} or
    // adjacent to both — in each case an endpoint of the crossing edge
    // lies in {u, v}. What remains after removing these vertices are
    // G²-edges entirely inside one side, handled by the side optima.
    for (u, v) in pg.cut_edges() {
        cover[u.index()] = true;
        cover[v.index()] = true;
    }
    let cut_vertices = set_size(&cover);

    // Interior solve per side on G²[side \ cut].
    let g2 = square(g);
    for side in [true, false] {
        let keep: Vec<bool> = (0..n).map(|i| pg.alice[i] == side && !cover[i]).collect();
        let sub = induced_subgraph(&g2, &keep);
        let local = solve_mvc(&sub.graph);
        for (i, &m) in local.iter().enumerate() {
            if m {
                cover[sub.to_host[i].index()] = true;
            }
        }
    }

    debug_assert!(is_vertex_cover(&g2, &cover), "Lemma 25 claim 1");
    Lemma25Outcome {
        cover,
        cut_vertices,
        bits_exchanged: 2 * usize::BITS as usize, // two counts exchanged
    }
}

/// The approximation ratio the protocol achieved against the exact
/// optimum of `G²` (exact solve — use on verification-sized graphs).
pub fn protocol_ratio(pg: &PartitionedGraph) -> f64 {
    let outcome = two_party_protocol(pg);
    let opt = set_size(&solve_mvc(&square(&pg.graph))).max(1);
    outcome.size() as f64 / opt as f64
}

/// Lemma 25's ratio bound for a connected graph: the protocol is a
/// `(1 + 2|C_V|/n)`-approximation, because the side-optima are optimal
/// for disjoint edge sets and OPT ≥ n/2 − ... (Lemma 6).
pub fn ratio_bound(n: usize, cut_vertices: usize) -> f64 {
    // OPT(G²) ≥ (n − #components·...)/2; for connected G, OPT ≥ (n−1)/2.
    let opt_lb = ((n as f64) - 1.0) / 2.0;
    1.0 + cut_vertices as f64 / opt_lb.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckp17;
    use crate::disjointness::DisjInstance;
    use pga_graph::cover::is_vertex_cover;
    use pga_graph::generators;
    use pga_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_partition(g: Graph, frac: f64, seed: u64) -> PartitionedGraph {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let alice = (0..g.num_nodes())
            .map(|_| rng.random::<f64>() < frac)
            .collect();
        PartitionedGraph { graph: g, alice }
    }

    #[test]
    fn protocol_produces_valid_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..5 {
            let g = generators::connected_gnp(16, 0.15, &mut rng);
            let pg = random_partition(g, 0.5, seed);
            let out = two_party_protocol(&pg);
            assert!(is_vertex_cover(&square(&pg.graph), &out.cover));
            assert!(out.bits_exchanged <= 128, "O(log n) bits only");
        }
    }

    #[test]
    fn small_cut_gives_near_optimal_cover() {
        // Two dense blobs joined by one edge: the cut is 1 edge, so the
        // protocol is near-optimal — the heart of Lemma 25.
        let blob_a = generators::complete(10);
        let blob_b = generators::complete(10);
        let mut g = generators::disjoint_union(&blob_a, &blob_b);
        {
            let mut b = pga_graph::GraphBuilder::new(20);
            for (u, v) in g.edges() {
                b.add_edge(u, v);
            }
            b.add_edge(pga_graph::NodeId(0), pga_graph::NodeId(10));
            g = b.build();
        }
        let pg = PartitionedGraph {
            graph: g,
            alice: (0..20).map(|i| i < 10).collect(),
        };
        let ratio = protocol_ratio(&pg);
        assert!(
            ratio <= ratio_bound(20, 2) + 1e-9,
            "ratio {ratio} above Lemma 25 bound"
        );
        assert!(ratio <= 1.2, "one cut edge on 20 dense vertices: ≈ optimal");
    }

    #[test]
    fn lemma25_on_the_papers_own_families() {
        // The punchline: the paper's Figure-1 family has an O(log k) cut,
        // so the Lemma 25 protocol approximates ITS G²-MVC almost
        // optimally with O(log n) communication — which is why no
        // Theorem-19-style family can give a super-constant bound for
        // (1+ε)-approximation.
        let mut rng = StdRng::seed_from_u64(3);
        let inst = DisjInstance::random(4, 0.5, &mut rng);
        let fam = ckp17::build(&inst);
        let out = two_party_protocol(&fam.partitioned);
        assert!(is_vertex_cover(&square(fam.graph()), &out.cover));
        let ratio = protocol_ratio(&fam.partitioned);
        assert!(
            ratio <= ratio_bound(fam.graph().num_nodes(), out.cut_vertices),
            "ratio {ratio}"
        );
    }

    #[test]
    fn ratio_bound_shrinks_with_n() {
        assert!(ratio_bound(1000, 10) < ratio_bound(100, 10));
        assert!(ratio_bound(1000, 10) < 1.03);
    }
}
