//! Theorem 22 (Figure 3): the *unweighted* `G²`-MVC lower-bound family
//! `H_{x,y}` with dangling path gadgets.
//!
//! The weighted construction of Theorem 20 needs weight-0 gadget
//! vertices; to remove weights, every gadget grows a tail: the 3-vertex
//! **dangling path** `DP_e[1] — DP_e[2] — DP_e[3]` with `DP_e[1]`
//! adjacent to both endpoints of the replaced edge. In `H²` the three
//! gadget vertices form a triangle in which the leaf `DP_e[3]` is
//! dominated, so (Lemma 23) every optimal cover can be normalized to take
//! exactly `{DP_e[1], DP_e[2]}` from each gadget — a fixed cost of 2 per
//! gadget. Input edges again use *shared* gadgets hanging off `a₁ⁱ`/`b₁ⁱ`.
//!
//! **Lemma 24** (verified in the tests): `MVC(H²_{x,y}) = MVC(G_{x,y}) +
//! 2·(#gadgets)` with `#gadgets = 2k + 4k log₂ k + 8 log₂ k`.

use crate::ckp17::{self, row, Ckp17Graph};
use crate::disjointness::{DisjInstance, PartitionedGraph};
use crate::gadgets::{attach_dangling_path, attach_shared_path};
use pga_graph::{Graph, GraphBuilder, NodeId};

/// The unweighted `H_{x,y}` instance.
#[derive(Clone, Debug)]
pub struct MvcLowerBound {
    /// The gadget graph with its Alice/Bob partition.
    pub partitioned: PartitionedGraph,
    /// `k`.
    pub k: usize,
    /// Number of (dangling + shared) path gadgets.
    pub num_gadgets: usize,
    /// The predicate threshold on `H²`:
    /// `W + 2·#gadgets` with `W = 4(k−1) + 4 log₂ k`.
    pub budget: usize,
}

impl MvcLowerBound {
    /// The underlying communication graph.
    pub fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }
}

/// Builds the Figure-3 family from a disjointness instance.
pub fn build(inst: &DisjInstance) -> MvcLowerBound {
    let base: Ckp17Graph = ckp17::build(inst);
    let g = base.graph();
    let is_bit = base.bit_vertex_set();

    let mut b = GraphBuilder::new(g.num_nodes());
    let mut alice = base.partitioned.alice.clone();
    let mut num_gadgets = 0;
    let register = |alice: &mut Vec<bool>, on_alice: bool| {
        for _ in 0..3 {
            alice.push(on_alice);
        }
    };

    for (u, v) in g.edges() {
        if is_bit[u.index()] || is_bit[v.index()] {
            attach_dangling_path(&mut b, u, v);
            let side = alice[u.index()] && alice[v.index()];
            register(&mut alice, side);
            num_gadgets += 1;
        } else if !is_input_edge(&base, u, v) {
            b.add_edge(u, v);
        }
    }

    for (r1, r2, on_alice) in [(row::A1, row::A2, true), (row::B1, row::B2, false)] {
        for i in 0..base.k {
            let host = base.rows[r1][i];
            let [head, _p2, _p3] = attach_shared_path(&mut b, host);
            register(&mut alice, on_alice);
            num_gadgets += 1;
            for j in 0..base.k {
                let other = base.rows[r2][j];
                if g.has_edge(host, other) {
                    b.add_edge(head, other);
                }
            }
        }
    }

    let graph = b.build();
    debug_assert_eq!(graph.num_nodes(), alice.len());
    MvcLowerBound {
        partitioned: PartitionedGraph { graph, alice },
        k: base.k,
        num_gadgets,
        budget: base.cover_budget() + 2 * num_gadgets,
    }
}

fn is_input_edge(base: &Ckp17Graph, u: NodeId, v: NodeId) -> bool {
    let side = |r1: usize, r2: usize| {
        (base.rows[r1].contains(&u) && base.rows[r2].contains(&v))
            || (base.rows[r1].contains(&v) && base.rows[r2].contains(&u))
    };
    side(row::A1, row::A2) || side(row::B1, row::B2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckp17;
    use pga_exact::vc::{mvc_size, solve_mvc_with_budget};
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gadget_count_matches_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [2usize, 4, 8] {
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let h = build(&inst);
            let logk = k.ilog2() as usize;
            assert_eq!(h.num_gadgets, 2 * k + 4 * k * logk + 8 * logk, "k={k}");
            // n = O(k log k): originals + 3 per gadget.
            assert_eq!(h.graph().num_nodes(), 4 * k + 8 * logk + 3 * h.num_gadgets);
        }
    }

    #[test]
    fn cut_stays_logarithmic() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in [2usize, 4, 8] {
            let inst = DisjInstance::random(k, 0.5, &mut rng);
            let h = build(&inst);
            assert!(h.partitioned.cut_size() <= 8 * k.ilog2() as usize, "k={k}");
        }
    }

    #[test]
    fn lemma24_offset_equality_k2() {
        // MVC(H²) = MVC(G) + 2·#gadgets.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4 {
            let inst = DisjInstance::random(2, 0.5, &mut rng);
            let g = ckp17::build(&inst);
            let h = build(&inst);
            let h2 = square(h.graph());
            assert_eq!(
                mvc_size(&h2),
                mvc_size(g.graph()) + 2 * h.num_gadgets,
                "x={:?} y={:?}",
                inst.x,
                inst.y
            );
        }
    }

    #[test]
    fn predicate_transfers_to_square_k2() {
        let yes = DisjInstance::new(2, vec![true; 4], vec![true; 4]);
        let h = build(&yes);
        assert!(solve_mvc_with_budget(&square(h.graph()), h.budget).is_some());

        let no = DisjInstance::new(
            2,
            vec![true, false, false, false],
            vec![false, true, true, true],
        );
        let h = build(&no);
        assert!(solve_mvc_with_budget(&square(h.graph()), h.budget).is_none());
    }

    #[test]
    fn gadget_triangles_in_square() {
        // Lemma 23's precondition: each dangling gadget forms a triangle
        // in H² whose leaf has no edges outside the gadget.
        let inst = DisjInstance::new(2, vec![false; 4], vec![false; 4]);
        let h = build(&inst);
        let h2 = square(h.graph());
        // Gadget vertices start right after the originals, in blocks of 3.
        let n0 = 4 * 2 + 8;
        let p1 = NodeId(n0 as u32);
        let p2 = NodeId(n0 as u32 + 1);
        let p3 = NodeId(n0 as u32 + 2);
        assert!(h2.has_edge(p1, p2) && h2.has_edge(p2, p3) && h2.has_edge(p1, p3));
        assert_eq!(h2.degree(p3), 2, "the leaf sees only its own gadget");
    }
}
