//! Property-based tests over the lower-bound families: the predicate ⇔
//! disjointness equivalences and gadget lemmas on randomized instances.

use pga_exact::mds::solve_mds_with_budget;
use pga_exact::vc::{mvc_size, solve_mvc_with_budget};
use pga_exact::wvc::mwvc_weight;
use pga_graph::power::square;
use pga_lowerbounds::disjointness::DisjInstance;
use pga_lowerbounds::{bcd19, centralized, ckp17, mvc, mwvc};
use proptest::prelude::*;

fn arb_instance_k2() -> impl Strategy<Value = DisjInstance> {
    (any::<u8>(), any::<u8>()).prop_map(|(xm, ym)| DisjInstance {
        k: 2,
        x: (0..4).map(|b| xm >> b & 1 == 1).collect(),
        y: (0..4).map(|b| ym >> b & 1 == 1).collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Figure 1 predicate ⇔ DISJ on arbitrary k = 2 instances.
    #[test]
    fn ckp17_predicate(inst in arb_instance_k2()) {
        let g = ckp17::build(&inst);
        let fits = solve_mvc_with_budget(g.graph(), g.cover_budget()).is_some();
        prop_assert_eq!(fits, !inst.disjoint());
    }

    /// Figure 4 predicate ⇔ DISJ on arbitrary k = 2 instances.
    #[test]
    fn bcd19_predicate(inst in arb_instance_k2()) {
        let g = bcd19::build(&inst);
        let fits = solve_mds_with_budget(g.graph(), g.ds_budget()).is_some();
        prop_assert_eq!(fits, !inst.disjoint());
    }

    /// Lemma 21: the weighted square optimum equals the base optimum.
    #[test]
    fn lemma21(inst in arb_instance_k2()) {
        let g = ckp17::build(&inst);
        let h = mwvc::build(&inst);
        let h2 = square(h.graph());
        prop_assert_eq!(
            mwvc_weight(&h2, &h.weights),
            mvc_size(g.graph()) as u64
        );
    }

    /// Lemma 24: the unweighted square optimum is offset by 2·#gadgets.
    #[test]
    fn lemma24(inst in arb_instance_k2()) {
        let g = ckp17::build(&inst);
        let h = mvc::build(&inst);
        let h2 = square(h.graph());
        prop_assert_eq!(
            mvc_size(&h2),
            mvc_size(g.graph()) + 2 * h.num_gadgets
        );
    }

    /// Theorem 44's reduction on arbitrary small graphs.
    #[test]
    fn theorem44(n in 3usize..8, edges in proptest::collection::vec((0u32..8, 0u32..8), 0..14)) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = pga_graph::Graph::from_edges(n, &edges);
        let h = centralized::dangling_path_reduction(&g);
        prop_assert_eq!(
            mvc_size(&square(&h)),
            mvc_size(&g) + 2 * g.num_edges()
        );
    }

    /// Cut sizes are input-independent: the cut is fixed wiring, so it
    /// must not change with x, y.
    #[test]
    fn cut_is_input_independent(a in arb_instance_k2(), b in arb_instance_k2()) {
        prop_assert_eq!(
            ckp17::build(&a).partitioned.cut_size(),
            ckp17::build(&b).partitioned.cut_size()
        );
        prop_assert_eq!(
            bcd19::build(&a).partitioned.cut_size(),
            bcd19::build(&b).partitioned.cut_size()
        );
    }

    /// Definition 18 locality on random pairs: x-changes stay on Alice's
    /// side, y-changes on Bob's.
    #[test]
    fn definition18_locality(a in arb_instance_k2(), b in arb_instance_k2()) {
        let mut x_changed = a.clone();
        x_changed.x = b.x.clone();
        let ga = ckp17::build(&a);
        let gx = ckp17::build(&x_changed);
        prop_assert!(ga.partitioned.input_locality_ok(&gx.partitioned, true));

        let mut y_changed = a.clone();
        y_changed.y = b.y.clone();
        let gy = ckp17::build(&y_changed);
        prop_assert!(ga.partitioned.input_locality_ok(&gy.partitioned, false));
    }
}
