//! A minimal, dependency-free stand-in for the parts of the [`rand`]
//! crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny API-compatible subset instead of the real
//! crate: [`Rng`], [`RngExt`], [`SeedableRng`], [`rngs::StdRng`]
//! (xoshiro256** seeded via SplitMix64) and [`seq::SliceRandom`].
//! Everything is deterministic given a seed, which is all the
//! experiment harness and the property tests require. Swapping the
//! real `rand` back in later is a one-line change in the workspace
//! manifest.
//!
//! [`rand`]: https://crates.io/crates/rand

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
///
/// The workspace's algorithms take `&mut impl Rng` so that every run is
/// reproducible from an explicit seed.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction of a generator from a numeric seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`Rng`]'s bit stream.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of their element type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**,
    /// with its 256-bit state expanded from the seed by SplitMix64.
    ///
    /// Not cryptographically secure — it exists for reproducible
    /// simulations and tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling and uniform choice for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0u32..=5);
            assert!(y <= 5);
            let z = rng.random_range(-4i64..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn range_sampling_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
