//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness, covering exactly the API subset the workspace's
//! `criterion_suite` bench uses: [`Criterion`], [`BenchmarkId`],
//! benchmark groups with [`bench_with_input`](BenchmarkGroup::bench_with_input),
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! The build environment cannot reach crates.io, so this shim replaces
//! statistical sampling with a fixed-iteration wall-clock measurement
//! printed in criterion's familiar `group/id  time: [..]` shape. It is
//! a smoke harness: it proves the benchmarked code runs and gives a
//! rough timing, not a rigorous confidence interval. Switching to the
//! real crate is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// Identifier of one benchmark case within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter value (matching the real
    /// crate's `BenchmarkId::from_parameter`).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark body: the closure passed to
/// [`BenchmarkGroup::bench_with_input`] calls [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` calls of `routine`, black-boxing the result so the
    /// optimizer cannot discard the computation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per case (the real crate's
    /// statistical sample count; here, the plain iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark case over `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
        };
        routine(&mut b, input);
        let per_iter = b.elapsed_ns / u128::from(b.iters.max(1));
        println!(
            "{}/{}  time: [{} ns/iter over {} iters]",
            self.name, id, per_iter, b.iters
        );
        self
    }

    /// Runs one benchmark case with no explicit input.
    pub fn bench_function<R>(&mut self, id: BenchmarkId, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| routine(b))
    }

    /// Ends the group (a no-op here; the real crate renders summaries).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group (default 20 iterations per case —
    /// small, since this shim times a fixed loop rather than sampling).
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark function outside any group.
    pub fn bench_function<R>(&mut self, name: &str, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from_parameter("base"), routine);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring the real macro: each
/// listed function takes `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
    }
}
