//! A minimal, dependency-free stand-in for the parts of the
//! [`proptest`] crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a small API-compatible subset: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range / tuple / [`Just`](strategy::Just) /
//! [`any`](strategy::any) strategies, [`collection::vec`] and
//! [`collection::btree_set`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test's module path
//! and name), and failing inputs are **not shrunk** — the failing case
//! index and assertion message are reported instead. That keeps the
//! property tests meaningful and reproducible while staying fully
//! offline. Swapping the real `proptest` back in later is a one-line
//! change in the workspace manifest.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirrored from the real crate.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, FlatMap, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// A strategy choosing uniformly among the listed case strategies
/// (which must share a value type). Weight prefixes (`w => strategy`)
/// of the real crate are not supported — list each case bare.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Declares a block of property tests.
///
/// Each `fn name(pattern in strategy, ...) { body }` item becomes a
/// `#[test]` that samples its strategies for `config.cases` iterations
/// and runs the body on each sample. An optional leading
/// `#![proptest_config(expr)]` overrides the default
/// [`ProptestConfig`](crate::test_runner::ProptestConfig).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $cfg; $($rest)* }
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @impl $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with the sampled inputs' case index) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}
