//! The [`Strategy`] trait and the primitive strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{RngExt, Standard};

use crate::test_runner::TestRng;

/// A recipe for generating values of an associated type.
///
/// Unlike the real proptest, strategies here are plain samplers: they
/// produce one value per call and carry no shrinking machinery.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds each generated value into `f` to pick a dependent strategy,
    /// then samples from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// A union of strategies over one value type; sampling picks one case
/// uniformly at random. Backs the [`prop_oneof!`](crate::prop_oneof)
/// macro (the real proptest's weighted unions collapse to uniform
/// choice here — this shim carries no shrinking machinery either way).
pub struct Union<T> {
    cases: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union from boxed cases.
    ///
    /// # Panics
    ///
    /// Panics if `cases` is empty.
    pub fn new(cases: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!cases.is_empty(), "prop_oneof! needs at least one case");
        Union { cases }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.cases.len());
        self.cases[i].new_value(rng)
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> T {
        rng.random()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy over the full value space of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
