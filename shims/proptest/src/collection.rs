//! Strategies for collections.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection-size specification: either an exact size or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max_inclusive)
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `BTreeSet` of values from `element`.
///
/// The number of *insertions* is drawn from `size`; duplicates collapse,
/// so the resulting set may be smaller (matching the real crate's
/// behavior of not guaranteeing the minimum when the domain is small).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let insertions = self.size.sample(rng);
        (0..insertions)
            .map(|_| self.element.new_value(rng))
            .collect()
    }
}
