//! Test-case execution support: configuration, errors, and the
//! deterministic per-test RNG.

use std::fmt;

use rand::SeedableRng;

/// The RNG driving strategy sampling.
pub type TestRng = rand::rngs::StdRng;

/// Configuration for one [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (carries the rendered message).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion-failure message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Builds the deterministic RNG for a test, seeded from an FNV-1a hash
/// of its fully qualified name so every test explores a distinct but
/// reproducible stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}
