//! Property-based tests (proptest) over the core invariants.

use power_graphs::prelude::*;
use proptest::prelude::*;

/// Strategy: a random graph from an edge-probability matrix seed.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        generators::gnp(n, 0.25, &mut rng)
    })
}

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        generators::connected_gnp(n, 0.1, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The square contains the graph, and squaring is monotone in edges.
    #[test]
    fn square_contains_graph(g in arb_graph(18)) {
        let g2 = square(&g);
        for (u, v) in g.edges() {
            prop_assert!(g2.has_edge(u, v));
        }
        prop_assert!(g2.num_edges() >= g.num_edges());
    }

    /// Powers are monotone: E(G^r) ⊆ E(G^{r+1}).
    #[test]
    fn powers_monotone(g in arb_graph(14)) {
        let g2 = power(&g, 2);
        let g3 = power(&g, 3);
        for (u, v) in g2.edges() {
            prop_assert!(g3.has_edge(u, v));
        }
    }

    /// Exact MVC of the square is sandwiched: matching lower bound,
    /// trivial upper bound, and is a valid cover.
    #[test]
    fn exact_mvc_square_sandwich(g in arb_graph(13)) {
        let g2 = square(&g);
        let cover = solve_mvc(&g2);
        prop_assert!(is_vertex_cover(&g2, &cover));
        let m = pga_graph::matching::maximal_matching(&g2);
        prop_assert!(set_size(&cover) >= m.len());
        prop_assert!(set_size(&cover) <= g.num_nodes());
    }

    /// Theorem 1 invariants on arbitrary connected graphs: validity and
    /// the (1+ε) factor against the exact square optimum.
    #[test]
    fn theorem1_validity_and_ratio(g in arb_connected_graph(14)) {
        let eps = 0.5;
        let r = g2_mvc_congest(&g, eps, LocalSolver::Exact).unwrap();
        prop_assert!(is_vertex_cover_on_square(&g, &r.cover));
        let opt = mvc_size(&square(&g));
        prop_assert!(r.size() as f64 <= (1.0 + eps) * opt as f64 + 1e-9);
    }

    /// The 5/3 algorithm: always a valid cover; ratio ≤ 5/3 on squares.
    #[test]
    fn five_thirds_ratio_on_squares(g in arb_graph(12)) {
        let g2 = square(&g);
        let r = five_thirds_vertex_cover(&g2);
        prop_assert!(is_vertex_cover(&g2, &r.cover));
        let opt = mvc_size(&g2);
        if opt > 0 {
            prop_assert!(r.size() as f64 / opt as f64 <= 5.0/3.0 + 1e-9);
        }
        // Lemma 15's implied optimum lower bound.
        prop_assert!(opt as f64 >= r.optimum_lower_bound() - 1e-9);
    }

    /// Exact weighted VC is never larger than any greedy cover's weight,
    /// and local-ratio stays within factor 2.
    #[test]
    fn weighted_vc_orderings(g in arb_graph(11), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let w = VertexWeights::random(g.num_nodes(), 1..16, &mut rng);
        let opt = mwvc_weight(&g, &w);
        let lr = pga_exact::greedy::local_ratio_mwvc(&g, &w);
        prop_assert!(is_vertex_cover(&g, &lr));
        prop_assert!(set_weight(&lr, w.as_slice()) <= 2 * opt);
    }

    /// Dominating-set duality on the square: an MDS of G² is no larger
    /// than an MDS of G (more edges only help domination).
    #[test]
    fn mds_square_no_larger(g in arb_graph(13)) {
        let g2 = square(&g);
        prop_assert!(mds_size(&g2) <= mds_size(&g));
    }

    /// The Theorem 44 reduction invariant on arbitrary graphs:
    /// MVC(H²) = MVC(G) + 2m.
    #[test]
    fn theorem44_reduction_invariant(g in arb_graph(9)) {
        let h = power_graphs::lowerbounds::centralized::dangling_path_reduction(&g);
        let h2 = square(&h);
        prop_assert_eq!(mvc_size(&h2), mvc_size(&g) + 2 * g.num_edges());
    }

    /// The Theorem 45 reduction invariant: MDS(H²) = MDS(G) + 1 on graphs
    /// with at least one edge.
    #[test]
    fn theorem45_reduction_invariant(g in arb_connected_graph(9)) {
        let (h, _tail) = power_graphs::lowerbounds::centralized::merged_dangling_reduction(&g);
        let h2 = square(&h);
        prop_assert_eq!(mds_size(&h2), mds_size(&g) + 1);
    }

    /// Estimator calibration (Lemma 29): with enough samples the estimate
    /// lands within 40% of the truth on every vertex.
    #[test]
    fn estimator_concentration(seed in any::<u64>()) {
        use power_graphs::algorithms::mds::estimator::{estimate_two_hop_sizes, exact_two_hop_sizes};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::connected_gnp(15, 0.15, &mut rng);
        let in_u: Vec<bool> = (0..15).map(|i| i % 2 == 0).collect();
        let exact = exact_two_hop_sizes(&g, &in_u);
        let est = estimate_two_hop_sizes(&g, &in_u, 600, seed);
        for v in 0..15 {
            let x = exact[v] as f64;
            if x == 0.0 {
                prop_assert_eq!(est[v], 0.0);
            } else {
                prop_assert!((est[v] - x).abs() / x < 0.4,
                    "node {}: {} vs {}", v, est[v], x);
            }
        }
    }
}
