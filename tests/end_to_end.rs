//! Cross-crate integration tests: the full pipeline from graph generation
//! through distributed simulation to exact verification.

use power_graphs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 1 end to end: across generators and ε values, the distributed
/// cover is valid and within `(1+ε)` of the exact optimum of the square.
#[test]
fn theorem1_pipeline_on_many_graphs() {
    let mut rng = StdRng::seed_from_u64(1);
    let graphs: Vec<Graph> = vec![
        generators::path(18),
        generators::cycle(14),
        generators::star(15),
        generators::caterpillar(4, 3),
        generators::clique_chain(3, 5),
        generators::grid(3, 5),
        generators::connected_gnp(16, 0.15, &mut rng),
        generators::preferential_attachment(16, 2, &mut rng),
    ];
    for g in &graphs {
        let g2 = square(g);
        let opt = mvc_size(&g2);
        for eps in [0.34, 0.5, 1.0] {
            let r = g2_mvc_congest(g, eps, LocalSolver::Exact).unwrap();
            assert!(is_vertex_cover_on_square(g, &r.cover), "{g:?} eps={eps}");
            assert!(
                r.size() as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
                "{g:?} eps={eps}: {} > (1+{eps})·{opt}",
                r.size()
            );
        }
    }
}

/// All four MVC algorithm variants agree on validity and stay within
/// their guarantees on one shared instance.
#[test]
fn all_variants_one_instance() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::connected_gnp(20, 0.18, &mut rng);
    let g2 = square(&g);
    let opt = mvc_size(&g2) as f64;

    let congest = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
    let clique_d = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
    let clique_r = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, 11).unwrap();
    let ft = five_thirds_vertex_cover(&g2);

    for (name, cover, bound) in [
        ("congest", &congest.cover, 1.5),
        ("clique-det", &clique_d.cover, 1.5),
        ("clique-rand", &clique_r.cover, 1.5),
        ("five-thirds", &ft.cover, 5.0 / 3.0),
    ] {
        assert!(is_vertex_cover_on_square(&g, cover), "{name}");
        assert!(
            set_size(cover) as f64 <= bound * opt + 1e-9,
            "{name}: {} > {bound}·{opt}",
            set_size(cover)
        );
    }
}

/// Weighted pipeline: Theorem 7 against the exact weighted optimum.
#[test]
fn weighted_pipeline() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::connected_gnp(14, 0.2, &mut rng);
    let w = VertexWeights::random(14, 1..64, &mut rng);
    let g2 = square(&g);
    let opt = mwvc_weight(&g2, &w) as f64;
    let r = g2_mwvc_congest(&g, &w, 0.5).unwrap();
    assert!(is_vertex_cover_on_square(&g, &r.cover));
    assert!(r.weight(&w) as f64 <= 1.5 * opt + 1e-9);
}

/// MDS pipeline: Theorem 28, CD18 baseline, greedy, exact — all valid,
/// ordered sensibly.
#[test]
fn mds_pipeline() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = generators::connected_gnp(22, 0.12, &mut rng);
    let g2 = square(&g);

    let dist = g2_mds_congest(&g, 8, 17).unwrap();
    assert!(is_dominating_set_on_square(&g, &dist.dominating_set));

    let cd18 = cd18_mds(&g2, 17);
    assert!(is_dominating_set(&g2, &cd18.dominating_set));

    let opt = mds_size(&g2);
    assert!(set_size(&dist.dominating_set) >= opt);
    assert!(set_size(&cd18.dominating_set) >= opt);
}

/// The simulator's round accounting separates the models: the clique
/// variant's Phase II beats CONGEST pipelining on a long path.
#[test]
fn model_separation_visible_in_rounds() {
    let g = generators::path(50);
    let congest = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
    let clique = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
    assert!(clique.total_rounds() < congest.total_rounds());
}

/// Round scaling: Theorem 1's O(n/ε) — halving ε must not blow up rounds
/// more than ~2× (plus constants), and doubling n roughly doubles rounds
/// on a fixed family.
#[test]
fn round_scaling_shape() {
    let r_half = g2_mvc_congest(&generators::cycle(40), 0.5, LocalSolver::Exact)
        .unwrap()
        .total_rounds() as f64;
    let r_quarter = g2_mvc_congest(&generators::cycle(40), 0.25, LocalSolver::Exact)
        .unwrap()
        .total_rounds() as f64;
    assert!(r_quarter <= 4.0 * r_half + 60.0);

    let r80 = g2_mvc_congest(&generators::cycle(80), 0.5, LocalSolver::Exact)
        .unwrap()
        .total_rounds() as f64;
    assert!(
        r80 <= 4.0 * r_half + 60.0,
        "rounds must scale ~linearly in n"
    );
}

/// Lemma 6 on powers: the trivial cover's measured ratio respects
/// 1 + 1/⌊r/2⌋ for r = 2, 3, 4.
#[test]
fn trivial_cover_ratio_on_powers() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::connected_gnp(14, 0.15, &mut rng);
    for r in [2usize, 3, 4] {
        let gr = power(&g, r);
        let opt = mvc_size(&gr);
        if opt == 0 {
            continue;
        }
        let ratio = 14.0 / opt as f64;
        let bound = 1.0 + 1.0 / ((r / 2) as f64);
        assert!(ratio <= bound + 1e-9, "r={r}: {ratio} > {bound}");
    }
}

/// Sequential and distributed Algorithm 1 produce identically sized
/// covers (same greedy rule, same exact finisher).
#[test]
fn sequential_distributed_agreement() {
    use power_graphs::algorithms::sequential::g2_mvc_sequential;
    for g in [
        generators::star(18),
        generators::clique_chain(4, 4),
        generators::complete_bipartite(6, 6),
    ] {
        let seq = g2_mvc_sequential(&g, 0.5, LocalSolver::Exact);
        let dist = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
        assert_eq!(set_size(&seq.cover), dist.size(), "{g:?}");
    }
}
