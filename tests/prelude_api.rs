//! Smoke test pinning the `power_graphs::prelude` surface.
//!
//! The prelude's re-export list is documented in the facade crate's
//! rustdoc; this test exercises every item through the prelude alone so
//! a drifted or dropped re-export fails the build (or this test) rather
//! than silently breaking downstream examples and experiments.

use power_graphs::prelude::*;

/// Every documented prelude item resolves and behaves on a small graph.
#[test]
fn prelude_exposes_documented_api() {
    // Graph substrate: generators, Graph, GraphBuilder, NodeId,
    // VertexWeights, power/square.
    let g: Graph = generators::clique_chain(4, 5);
    let mut builder = GraphBuilder::new(3);
    builder.add_clique(&[NodeId(0), NodeId(1), NodeId(2)]);
    let triangle: Graph = builder.build();
    assert_eq!(triangle.num_edges(), 3);

    let g2: Graph = square(&g);
    assert_eq!(g2, power(&g, 2));

    // Cover predicates and set helpers.
    let all = vec![true; g.num_nodes()];
    assert!(is_vertex_cover(&g, &all));
    assert!(is_vertex_cover_on_square(&g, &all));
    assert!(is_dominating_set(&g, &all));
    assert!(is_dominating_set_on_square(&g, &all));
    assert_eq!(set_size(&all), g.num_nodes());
    let w = VertexWeights::uniform(g.num_nodes());
    assert_eq!(set_weight(&all, w.as_slice()), g.num_nodes() as u64);

    // Exact solvers.
    let opt_vc = solve_mvc(&g2);
    assert!(is_vertex_cover(&g2, &opt_vc));
    assert_eq!(set_size(&opt_vc), mvc_size(&g2));
    let opt_ds = solve_mds(&g2);
    assert!(is_dominating_set(&g2, &opt_ds));
    assert_eq!(set_size(&opt_ds), mds_size(&g2));
    let opt_wvc = solve_mwvc(&g2, &w);
    assert!(is_vertex_cover(&g2, &opt_wvc));
    assert_eq!(set_weight(&opt_wvc, w.as_slice()), mwvc_weight(&g2, &w));

    // Theorem 1: (1+eps)-approximate G²-MVC in CONGEST.
    let result: G2MvcResult = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
    assert!(is_vertex_cover_on_square(&g, &result.cover));
    let _rounds: usize = result.total_rounds();

    // Theorem 7: the weighted variant.
    let weighted = g2_mwvc_congest(&g, &w, 0.5).unwrap();
    assert!(is_vertex_cover_on_square(&g, &weighted.cover));

    // Corollary 10 and Theorem 11: CONGESTED CLIQUE variants.
    let det = g2_mvc_clique_det(&g, 0.5, LocalSolver::FiveThirds).unwrap();
    assert!(is_vertex_cover_on_square(&g, &det.cover));
    let rand = g2_mvc_clique_rand(&g, 0.5, LocalSolver::FiveThirds, 7).unwrap();
    assert!(is_vertex_cover_on_square(&g, &rand.cover));

    // Theorem 12: the centralized 5/3-approximation.
    let ft = five_thirds_vertex_cover(&g2);
    assert!(is_vertex_cover(&g2, &ft.cover));

    // Theorem 28 and CD18: G²-MDS algorithms.
    let mds = g2_mds_congest(&g, 16, 3).unwrap();
    assert!(is_dominating_set_on_square(&g, &mds.dominating_set));
    let cd18 = cd18_mds(&g2, 5);
    assert!(is_dominating_set(&g2, &cd18.dominating_set));

    // MPC execution model: the same entry points through the adapter
    // are bit-identical, and the native ruling set dominates G².
    let mvc_mpc: MpcExecution<G2MvcResult> =
        g2_mvc_congest_mpc(&g, 0.5, LocalSolver::Exact).unwrap();
    assert_eq!(mvc_mpc.result.cover, result.cover);
    let mds_mpc = g2_mds_congest_mpc(&g, 16, 3).unwrap();
    assert_eq!(mds_mpc.result.dominating_set, mds.dominating_set);
    let rs: RulingSetResult = g2_ruling_set_mpc_auto(&g).unwrap();
    assert!(is_dominating_set_on_square(&g, &rs.in_r));
}

/// The unified `RunConfig` builder and the `*_cfg` entry points are
/// part of the prelude surface, and the packed-codec plane they enable
/// is bit-identical to the defaults.
#[test]
fn prelude_exposes_run_config_api() {
    let g = generators::clique_chain(4, 5);
    let w = VertexWeights::uniform(g.num_nodes());
    let cfg = RunConfig::new().parallel(2).codec(true);

    let seq = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
    let par = g2_mvc_congest_cfg(&g, 0.5, LocalSolver::Exact, &cfg).unwrap();
    assert_eq!(par.cover, seq.cover);

    let wseq = g2_mwvc_congest(&g, &w, 0.5).unwrap();
    let wpar = g2_mwvc_congest_cfg(&g, &w, 0.5, &cfg).unwrap();
    assert_eq!(wpar.cover, wseq.cover);

    let det = g2_mvc_clique_det_cfg(&g, 0.5, LocalSolver::FiveThirds, &cfg).unwrap();
    assert!(is_vertex_cover_on_square(&g, &det.cover));
    let rand = g2_mvc_clique_rand_cfg(&g, 0.5, LocalSolver::FiveThirds, 7, &cfg).unwrap();
    assert!(is_vertex_cover_on_square(&g, &rand.cover));
    let mds = g2_mds_congest_cfg(&g, 16, 3, &cfg).unwrap();
    assert!(is_dominating_set_on_square(&g, &mds.dominating_set));

    let mpc_cfg = RunConfig::new().parallel(2);
    let budget = 1 << 20; // generous per-machine word budget for a tiny instance
    let mvc_mpc = g2_mvc_congest_mpc_cfg(&g, 0.5, LocalSolver::Exact, budget, &mpc_cfg).unwrap();
    assert_eq!(mvc_mpc.result.cover, seq.cover);
    let mds_mpc = g2_mds_congest_mpc_cfg(&g, 16, 3, budget, &mpc_cfg).unwrap();
    assert_eq!(mds_mpc.result.dominating_set, mds.dominating_set);

    // The builder's knobs compose and the codec plane is re-exported at
    // the trait level too.
    let _tuned = RunConfig::new()
        .engine(Engine::Sequential)
        .scheduling(Scheduling::FullSweep);
    fn assert_codec<T: MsgCodec>() {}
    assert_codec::<power_graphs::congest::primitives::MaxId>();
}

/// The simulator types re-exported by the prelude are usable directly.
#[test]
fn prelude_exposes_simulator_types() {
    let g = generators::path(6);
    let _congest: Simulator<'_> = Simulator::congest(&g);
    let _clique: Simulator<'_> = Simulator::congested_clique(&g);
    assert_ne!(Topology::Congest, Topology::CongestedClique);
    let metrics = Metrics::default();
    assert_eq!(metrics.rounds, 0);
    let _mpc: MpcSimulator = MpcSimulator::new(1024);
    let _adapter: CongestOnMpc<'_> = CongestOnMpc::congest(&g);
    let mpc_metrics = MpcMetrics::default();
    assert_eq!(mpc_metrics.peak_memory_words, 0);

    // Engine selection and the kernel's scheduling policy are part of
    // the prelude surface (both simulators accept both).
    assert_eq!(Engine::default(), Engine::Sequential);
    assert_ne!(Engine::parallel_auto(), Engine::Sequential);
    assert_eq!(Scheduling::default(), Scheduling::ActiveSet);
    let _tuned: Simulator<'_> = Simulator::congest(&g).with_scheduling(Scheduling::FullSweep);
    let _tuned_mpc: MpcSimulator = MpcSimulator::new(1024).with_scheduling(Scheduling::FullSweep);
}

/// The shared round kernel is re-exported as `power_graphs::runtime`
/// and both simulators are instantiations of it (same `Scheduling`
/// type, bit-identical policies).
#[test]
fn runtime_kernel_is_exposed() {
    use power_graphs::runtime;
    let profile = runtime::RoundProfile::default();
    assert_eq!(profile.messages, 0);
    assert_eq!(
        runtime::Scheduling::ActiveSet,
        power_graphs::prelude::Scheduling::ActiveSet
    );

    let g = generators::path(16);
    let mk = || {
        (0..16)
            .map(|i| power_graphs::congest::primitives::FloodMax::new(NodeId::from_index(i)))
            .collect::<Vec<_>>()
    };
    let full = Simulator::congest(&g)
        .with_scheduling(Scheduling::FullSweep)
        .run(mk())
        .unwrap();
    let active = Simulator::congest(&g)
        .with_scheduling(Scheduling::ActiveSet)
        .run_parallel(mk(), 3)
        .unwrap();
    assert_eq!(full.outputs, active.outputs);
    assert_eq!(full.metrics, active.metrics);
}
