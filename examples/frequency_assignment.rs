//! Frequency-conflict audit in a radio network.
//!
//! The paper's introduction motivates computing on `G²` with frequency
//! assignment in radio networks: two transmitters interfere not only when
//! adjacent but whenever they share a neighbor (hidden-terminal
//! collisions), i.e. conflicts live on `G²`. A regulator wants to take a
//! *minimum set of stations offline* so that no two remaining stations
//! conflict — an independent set in `G²`, whose complement is exactly a
//! `G²`-vertex cover. The stations can compute this themselves over their
//! radio links with the paper's Theorem-1 algorithm.
//!
//! Run with `cargo run --example frequency_assignment`.

use power_graphs::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds a random geometric-ish radio topology: stations on a grid with
/// a few long-range links.
fn radio_topology(rng: &mut StdRng) -> Graph {
    let rows = 5;
    let cols = 6;
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| NodeId::from_index(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
        }
    }
    // A handful of long-range interference links.
    for _ in 0..6 {
        let u = rng.random_range(0..rows * cols);
        let v = rng.random_range(0..rows * cols);
        if u != v {
            b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
        }
    }
    b.build()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);
    let g = radio_topology(&mut rng);
    let g2 = square(&g);
    println!(
        "radio network: {} stations, {} links; {} conflict pairs in G²",
        g.num_nodes(),
        g.num_edges(),
        g2.num_edges()
    );

    // Distributed: stations run Theorem 1 over their own links.
    let eps = 0.25;
    let result = g2_mvc_congest(&g, eps, LocalSolver::Exact).unwrap();
    assert!(is_vertex_cover_on_square(&g, &result.cover));

    let offline: Vec<usize> = result
        .cover
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .map(|(i, _)| i)
        .collect();
    let online = g.num_nodes() - offline.len();
    println!(
        "take {} stations offline → {} stations keep transmitting conflict-free",
        offline.len(),
        online
    );
    println!(
        "computed in {} CONGEST rounds ({} messages, {} bits total)",
        result.total_rounds(),
        result.phase1_metrics.messages + result.phase2_metrics.messages,
        result.phase1_metrics.bits + result.phase2_metrics.bits,
    );

    // Sanity: the surviving stations are pairwise conflict-free.
    let survivors: Vec<bool> = result.cover.iter().map(|&b| !b).collect();
    assert!(pga_graph::cover::is_independent_set(&g2, &survivors));

    // How close to optimal? (Exact solve is feasible at this scale.)
    let opt = mvc_size(&g2);
    println!(
        "exact minimum shutdown = {opt}; distributed solution is {:.3}× optimal \
         (guarantee: ≤ {:.2})",
        offline.len() as f64 / opt as f64,
        1.0 + eps
    );
}
