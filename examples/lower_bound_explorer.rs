//! Explore the paper's lower-bound constructions (Figures 1–7).
//!
//! Builds each Alice–Bob family at a small parameter, verifies the
//! predicate ⇔ DISJ equivalence with exact solvers, and prints the
//! structural quantities (vertices, cut) that Theorem 19 turns into
//! `Ω̃(n²)`-round lower bounds.
//!
//! Run with `cargo run --release --example lower_bound_explorer`.

use power_graphs::lowerbounds::{
    bcd19, ckp17, disjointness::DisjInstance, mds_approx, mvc, mwvc, set_gadget,
};
use power_graphs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let k = 4;
    let yes = DisjInstance::random_intersecting(k, 0.4, &mut rng);
    let no = DisjInstance::random_disjoint(k, 0.4, &mut rng);

    println!("=== Figure 1: CKP17 G_xy (MVC on G) at k = {k} ===");
    for (name, inst) in [("intersecting", &yes), ("disjoint", &no)] {
        let g = ckp17::build(inst);
        let fits = pga_exact::vc::solve_mvc_with_budget(g.graph(), g.cover_budget()).is_some();
        println!(
            "  {name:12}: n = {}, cut = {}, VC ≤ {}? {} (expect {})",
            g.graph().num_nodes(),
            g.partitioned.cut_size(),
            g.cover_budget(),
            fits,
            !inst.disjoint()
        );
    }

    println!("\n=== Figure 2: weighted H_xy (Thm 20, G²-MWVC) ===");
    let h = mwvc::build(&yes);
    println!(
        "  n = {} (vs Θ(k²) if edges were replaced naively), cut = {}, \
         zero-weight gadgets = {}",
        h.graph().num_nodes(),
        h.partitioned.cut_size(),
        h.weights.as_slice().iter().filter(|&&w| w == 0).count()
    );

    println!("\n=== Figure 3: unweighted H_xy (Thm 22, G²-MVC) ===");
    let h = mvc::build(&yes);
    println!(
        "  n = {}, gadgets = {}, predicate threshold on H² = {}",
        h.graph().num_nodes(),
        h.num_gadgets,
        h.budget
    );

    println!("\n=== Figure 4: BCD19 G_xy (MDS) at k = {k} ===");
    for (name, inst) in [("intersecting", &yes), ("disjoint", &no)] {
        let g = bcd19::build(inst);
        let fits = pga_exact::mds::solve_mds_with_budget(g.graph(), g.ds_budget()).is_some();
        println!(
            "  {name:12}: n = {}, cut = {}, DS ≤ {}? {} (expect {})",
            g.graph().num_nodes(),
            g.partitioned.cut_size(),
            g.ds_budget(),
            fits,
            !inst.disjoint()
        );
    }

    println!("\n=== Figure 6: r-covering set gadget ===");
    let sys = set_gadget::SetSystem::search(24, 3, 3, 500, &mut rng)
        .expect("a 3-covering system exists at this size");
    println!(
        "  certified 3-covering system: T = {}, ℓ = {}",
        sys.len(),
        sys.universe
    );
    let gadget = set_gadget::build_gadget(&sys, 4);
    let g2 = square(&gadget.graph);
    let w2 = pga_exact::mds::mwds_weight(&g2, &gadget.weights);
    println!(
        "  gadget: n = {}, MDS weight of square = {w2} (Lemma 39 says 2)",
        gadget.graph.num_nodes()
    );

    println!("\n=== Figure 7: approximation-gap families (Thm 35 / Thm 41) ===");
    let t = 3;
    let cfg = mds_approx::ApproxConfig {
        system: set_gadget::SetSystem::search(24, t, 3, 500, &mut rng).expect("system"),
        heavy: 8,
    };
    let yes3 = DisjInstance::random_intersecting(t, 0.4, &mut rng);
    let no3 = DisjInstance::random_disjoint(t, 0.4, &mut rng);
    for (name, inst) in [("intersecting", &yes3), ("disjoint", &no3)] {
        let lb = mds_approx::build_weighted(inst, &cfg);
        let sq = square(lb.graph());
        let cheap = pga_exact::mds::solve_mwds_with_budget(&sq, &lb.weights, lb.low).is_some();
        println!(
            "  weighted  {name:12}: n = {}, MDS ≤ {}? {} (gap ratio {:.4})",
            lb.graph().num_nodes(),
            lb.low,
            cheap,
            lb.gap_ratio()
        );
    }
    for (name, inst) in [("intersecting", &yes3), ("disjoint", &no3)] {
        let lb = mds_approx::build_unweighted(inst, &cfg);
        let sq = square(lb.graph());
        let cheap = pga_exact::mds::solve_mwds_with_budget(&sq, &lb.weights, lb.low).is_some();
        println!(
            "  unweighted {name:12}: n = {}, MDS ≤ {}? {} (gap ratio {:.4})",
            lb.graph().num_nodes(),
            lb.low,
            cheap,
            lb.gap_ratio()
        );
    }

    println!("\nTheorem 19 reading: with cuts of O(log k) and n = O(k log k)");
    println!("vertices, distinguishing the two cases costs Ω(k²/log²k) = Ω̃(n²) rounds.");
}
