//! Quickstart: solve `G²`-MVC on a small network with every algorithm the
//! paper provides, and compare against the exact optimum.
//!
//! Run with `cargo run --example quickstart`.

use power_graphs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = generators::connected_gnp(24, 0.12, &mut rng);
    println!("network: {g:?} (Δ = {})", g.max_degree());

    let g2 = square(&g);
    println!("square:  {g2:?}");
    let opt = mvc_size(&g2);
    println!("exact OPT(G²-MVC) = {opt}\n");

    // Theorem 1: CONGEST, O(n/ε) rounds.
    for eps in [0.25, 0.5, 1.0] {
        let r = g2_mvc_congest(&g, eps, LocalSolver::Exact).unwrap();
        assert!(is_vertex_cover_on_square(&g, &r.cover));
        println!(
            "Thm 1  (CONGEST, ε = {eps:4}): |cover| = {:2} (≤ {:.1} = (1+ε)·OPT), {} rounds \
             [phase I {} + phase II {}]",
            r.size(),
            (1.0 + eps) * opt as f64,
            r.total_rounds(),
            r.phase1_metrics.rounds,
            r.phase2_metrics.rounds,
        );
    }

    // Corollary 10 / Theorem 11: CONGESTED CLIQUE.
    let det = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
    println!(
        "Cor 10 (CLIQUE, det)      : |cover| = {:2}, {} rounds",
        det.size(),
        det.total_rounds()
    );
    let rnd = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, 7).unwrap();
    println!(
        "Thm 11 (CLIQUE, rand)     : |cover| = {:2}, {} rounds",
        rnd.size(),
        rnd.total_rounds()
    );

    // Theorem 12: centralized 5/3.
    let ft = five_thirds_vertex_cover(&g2);
    println!(
        "Thm 12 (centralized 5/3)  : |cover| = {:2} (ratio {:.3} ≤ 5/3)",
        ft.size(),
        ft.size() as f64 / opt as f64
    );

    // Lemma 6: the zero-round trivial cover.
    println!(
        "Lem 6  (zero rounds)      : |cover| = {:2} (ratio {:.3} ≤ 2)",
        g.num_nodes(),
        g.num_nodes() as f64 / opt as f64
    );

    // Theorem 28: G²-MDS.
    let mds = g2_mds_congest(&g, 8, 3).unwrap();
    assert!(is_dominating_set_on_square(&g, &mds.dominating_set));
    let mds_opt = mds_size(&g2);
    println!(
        "\nThm 28 (G²-MDS, CONGEST)  : |DS| = {} vs OPT {} ({} rounds, r = {} samples/phase)",
        mds.size(),
        mds_opt,
        mds.metrics.rounds,
        mds.samples_per_phase
    );
}
