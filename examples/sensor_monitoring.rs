//! Two-hop monitoring in a sensor network (`G²`-MDS, Theorem 28).
//!
//! A field of battery-powered sensors wants a small set of *monitor*
//! nodes such that every sensor is within two radio hops of a monitor —
//! a dominating set of `G²`. The paper's Theorem 28 computes an
//! `O(log Δ)`-approximate one in polylogarithmically many CONGEST rounds
//! by simulating the [CD18] algorithm with the Lemma-29 two-hop
//! estimator. We compare it against the centralized greedy baseline and
//! the exact optimum.
//!
//! Run with `cargo run --example sensor_monitoring`.

use power_graphs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // A sensor field: preferential attachment gives a few well-connected
    // relays plus many leaf sensors — the regime where 2-hop domination
    // shines.
    let g = pga_graph::generators::preferential_attachment(40, 2, &mut rng);
    let g2 = square(&g);
    println!(
        "sensor field: {} sensors, {} links, Δ = {}, Δ(G²) = {}",
        g.num_nodes(),
        g.num_edges(),
        g.max_degree(),
        g2.max_degree()
    );

    // Distributed Theorem 28.
    let result = g2_mds_congest(&g, 8, 5).unwrap();
    assert!(is_dominating_set_on_square(&g, &result.dominating_set));
    println!(
        "\nThm 28 (distributed): {} monitors in {} CONGEST rounds",
        result.size(),
        result.metrics.rounds
    );

    // Centralized baselines.
    let greedy = pga_exact::greedy::greedy_mds(&g2);
    println!("greedy ln Δ baseline: {} monitors", set_size(&greedy));
    let opt = mds_size(&g2);
    println!("exact optimum:        {opt} monitors");

    let bound = (g2.max_degree() as f64).ln() + 2.0;
    println!(
        "\napproximation: {:.2}× optimal (O(log Δ) guarantee ≈ {bound:.2})",
        result.size() as f64 / opt as f64
    );

    // Where did the monitors go? Monitors should gravitate toward hubs.
    let mut monitors: Vec<(usize, usize)> = result
        .dominating_set
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .map(|(i, _)| (i, g.degree(NodeId::from_index(i))))
        .collect();
    monitors.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    println!("\nmonitors (id, degree): {monitors:?}");
}
