//! **power-graphs** — a Rust reproduction of *Distributed Approximation on
//! Power Graphs* (Bar-Yehuda, Censor-Hillel, Maus, Pai, Pemmaraju —
//! PODC 2020, arXiv:2006.03746).
//!
//! The paper studies optimization problems whose feasibility lives on the
//! square `G²` of a communication network `G` — vertex cover and
//! dominating set — under the CONGEST model's `O(log n)`-bit-per-edge
//! bandwidth. This workspace implements everything the paper builds on or
//! contributes:
//!
//! * [`graph`] — the graph substrate (generators, powers `G^r`, checks);
//! * [`runtime`] — the shared synchronous round-execution kernel (arena
//!   staging, quiescence-aware scheduling, sequential + sharded
//!   executors) that both simulators instantiate;
//! * [`congest`] — a model-enforcing CONGEST / CONGESTED CLIQUE simulator;
//! * [`mpc`] — a resource-accounted low-space MPC simulator with a
//!   CONGEST-to-MPC adapter and a native `G²` 2-ruling-set algorithm;
//! * [`exact`] — exact branch-and-bound solvers and greedy baselines;
//! * [`algorithms`] — the paper's upper bounds: the `(1+ε)`-approximation
//!   for `G²`-MVC in `O(n/ε)` rounds (Thm 1), its weighted (Thm 7) and
//!   CONGESTED CLIQUE (Cor 10, Thm 11) variants, the centralized
//!   5/3-approximation (Thm 12), the zero-round power-graph
//!   approximation (Lem 6), and the `O(log Δ)` `G²`-MDS algorithm with
//!   2-hop estimation (Thm 28, Lem 29);
//! * [`lowerbounds`] — the lower-bound families of Figures 1–7 with
//!   exact-solver verification of the gadget lemmas.
//!
//! # Quickstart
//!
//! ```
//! use power_graphs::prelude::*;
//!
//! // A communication network: chained cliques.
//! let g = generators::clique_chain(4, 5);
//!
//! // (1+ε)-approximate minimum vertex cover of G², computed in the
//! // CONGEST model on G.
//! let result = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
//! assert!(is_vertex_cover_on_square(&g, &result.cover));
//! println!("rounds: {}", result.total_rounds());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use pga_congest as congest;
pub use pga_core as algorithms;
pub use pga_exact as exact;
pub use pga_graph as graph;
pub use pga_lowerbounds as lowerbounds;
pub use pga_mpc as mpc;
pub use pga_runtime as runtime;

/// Commonly used items, re-exported for examples and quick experiments.
pub mod prelude {
    pub use pga_congest::{
        Engine, FaultSpec, FaultStats, FaultTrace, Metrics, MsgCodec, ReliabilitySpec, RunConfig,
        Scheduling, Simulator, Topology,
    };
    pub use pga_core::mds::cd18::cd18_mds;
    pub use pga_core::mds::congest_g2::{g2_mds_congest, g2_mds_congest_cfg};
    pub use pga_core::mpc::{
        g2_mds_congest_mpc, g2_mds_congest_mpc_cfg, g2_mvc_congest_mpc, g2_mvc_congest_mpc_cfg,
        MpcExecution,
    };
    pub use pga_core::mvc::centralized::five_thirds_vertex_cover;
    pub use pga_core::mvc::clique_det::{g2_mvc_clique_det, g2_mvc_clique_det_cfg};
    pub use pga_core::mvc::clique_rand::{g2_mvc_clique_rand, g2_mvc_clique_rand_cfg};
    pub use pga_core::mvc::congest::{
        g2_mvc_congest, g2_mvc_congest_cfg, G2MvcResult, LocalSolver,
    };
    pub use pga_core::mvc::weighted::{g2_mwvc_congest, g2_mwvc_congest_cfg};
    pub use pga_exact::mds::{mds_size, solve_mds};
    pub use pga_exact::vc::{mvc_size, solve_mvc};
    pub use pga_exact::wvc::{mwvc_weight, solve_mwvc};
    pub use pga_graph::cover::{
        is_dominating_set, is_dominating_set_on_square, is_vertex_cover, is_vertex_cover_on_square,
        set_size, set_weight,
    };
    pub use pga_graph::power::{power, square};
    pub use pga_graph::{generators, Graph, GraphBuilder, NodeId, VertexWeights};
    pub use pga_mpc::{
        g2_ruling_set_mpc_auto, CongestOnMpc, MpcMetrics, MpcSimulator, RulingSetResult,
    };
}
